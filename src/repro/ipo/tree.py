"""IPO-tree construction and the public :class:`IPOTree` index.

Section 3 of the paper.  The tree materialises, per combination of
first-order preferences over the nominal dimensions, the set of
root-skyline points that combination disqualifies; queries of any order
are then answered via the merging property (Theorem 2) without touching
the base data.

Two construction engines are provided:

* ``"direct"`` - runs a skyline computation (over the root skyline
  ``S``, not the full dataset) per node.  Simple, used as ground truth.
* ``"mdc"`` - the paper's approach: compute the minimal disqualifying
  conditions of every root-skyline point once, then evaluate each node's
  ``A`` by containment tests only (Section 3.1, "Implementation").

``IPO Tree-k`` (the paper's *IPO Tree-10*) restricts each dimension's
children to the ``k`` most frequent values; queries touching other
values raise :class:`~repro.exceptions.UnsupportedQueryError` so that a
hybrid deployment can fall back to Adaptive SFS (Section 5.3).

Template semantics
------------------
The root stores ``SKY(R)`` for the template ``R``.  A node labelled
``v < *`` *overrides* the template's chain on its dimension (needed
because Theorem 2 decomposes a chain ``v1 < ... < vx < *`` into the
standalone first-order preferences ``vi < *``, which are not themselves
refinements of the template); unlabelled dimensions keep the template's
chain.  Since answered queries must refine the template, all results
are subsets of ``S`` and cumulative ``A`` sets relative to ``S``
suffice - see DESIGN.md for the full argument.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.algorithms.sfs import sfs_skyline
from repro.core.dataset import Dataset
from repro.core.dominance import RankTable
from repro.core.preferences import ImplicitPreference, Preference
from repro.engine import resolve_backend
from repro.exceptions import PreferenceError, UnsupportedQueryError
from repro.ipo.node import IPONode
from repro.ipo.query import evaluate_bitmap, evaluate_sets, evaluate_survivors
from repro.mdc.mdc import (
    DisqualifyingCondition,
    compute_mdcs,
    template_positions,
)

#: Analytic storage model: bytes per stored point id (paper counts 4-byte
#: ids) and fixed per-node overhead (label + two pointers' worth).
_BYTES_PER_ID = 4
_BYTES_PER_NODE = 16


@dataclass(frozen=True)
class TreeStats:
    """Construction statistics reported by :meth:`IPOTree.build`."""

    engine: str
    payload: str
    node_count: int
    skyline_size: int
    build_seconds: float
    storage_bytes: int


@dataclass(frozen=True)
class RefreshStats:
    """What one :meth:`IPOTree.refresh` call changed and what it cost.

    ``entries_updated`` counts per-node membership flips - the work a
    full rebuild would redo for *every* (node, member) pair; the ratio
    against ``node_count * skyline_size`` is the refresh's saving.
    """

    skyline_size: int
    added: int
    removed: int
    dirty: int
    nodes_visited: int
    entries_updated: int
    seconds: float


class IPOTree:
    """The partial-materialisation index of Section 3.

    Build with :meth:`build`; query with :meth:`query`.

    Examples
    --------
    >>> from repro.core.attributes import Schema, numeric_min, numeric_max, nominal
    >>> from repro.core.dataset import Dataset
    >>> from repro.core.preferences import Preference
    >>> schema = Schema([numeric_min("Price"), numeric_max("Class"),
    ...                  nominal("Group", ["T", "H", "M"]),
    ...                  nominal("Airline", ["G", "R", "W"])])
    >>> data = Dataset(schema, [
    ...     (1600, 4, "T", "G"), (2400, 1, "T", "G"), (3000, 5, "H", "G"),
    ...     (3600, 4, "H", "R"), (2400, 2, "M", "R"), (3000, 3, "M", "W")])
    >>> tree = IPOTree.build(data)
    >>> sorted(tree.skyline_ids)          # S at the root (a, c, d, e, f)
    [0, 2, 3, 4, 5]
    >>> tree.query(Preference({"Group": "M < *", "Airline": "G < *"}))
    [0, 2, 4, 5]
    """

    name = "IPO Tree"

    def __init__(
        self,
        dataset: Dataset,
        template: Preference,
        nominal_dims: Tuple[int, ...],
        candidates: Tuple[Tuple[int, ...], ...],
        skyline_ids: Tuple[int, ...],
        root: IPONode,
        payload: str,
        stats: TreeStats,
    ) -> None:
        self.dataset = dataset
        self.template = template
        self.nominal_dims = nominal_dims
        self.candidates = candidates
        self.skyline_ids = skyline_ids
        self.root = root
        self.payload = payload
        self.stats = stats
        # Bitmap support structures (filled lazily for the set payload).
        self._positions: Dict[int, int] = {
            point_id: pos for pos, point_id in enumerate(skyline_ids)
        }
        self._value_masks: Optional[List[Dict[int, int]]] = None
        if payload == "bitmap":
            self._attach_masks()
        # Per-member MDCs retained for refresh(); filled by the "mdc"
        # construction engine, recomputed lazily on the first refresh of
        # a "direct"-built tree.
        self._refresh_mdcs: Optional[
            Dict[int, List[DisqualifyingCondition]]
        ] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: Dataset,
        template: Optional[Preference] = None,
        *,
        engine: str = "mdc",
        payload: str = "set",
        values_per_attribute: Union[None, int, Mapping[str, int]] = None,
        backend=None,
    ) -> "IPOTree":
        """Construct the IPO-tree for ``dataset`` under ``template``.

        Parameters
        ----------
        engine:
            ``"mdc"`` (paper's construction, default) or ``"direct"``.
        backend:
            Execution backend for the construction-time skyline runs
            and MDC computation (name, instance or ``None`` for the
            process default).
        payload:
            ``"set"`` stores each ``A`` as a frozenset of ids;
            ``"bitmap"`` additionally packs them into integer bit masks
            and answers queries with bitwise operations (the paper's
            "another efficient implementation").
        values_per_attribute:
            ``None`` for the full tree; an int ``k`` (or mapping
            ``attribute name -> k``) builds *IPO Tree-k* over the ``k``
            most frequent values per nominal attribute.  A mapping may
            also give an explicit list of values per attribute (e.g.
            from :func:`repro.datagen.queries.popular_values_from_history`).
            Template values are always kept so template refinements
            stay answerable.
        """
        if engine not in ("mdc", "direct"):
            raise PreferenceError(f"unknown construction engine {engine!r}")
        if payload not in ("set", "bitmap"):
            raise PreferenceError(f"unknown payload {payload!r}")
        template = template if template is not None else Preference.empty()
        template.validate_against(dataset.schema)

        started = time.perf_counter()
        schema = dataset.schema
        nominal_dims = schema.nominal_indices
        engine_backend = resolve_backend(backend)
        store = dataset.columns if engine_backend.vectorized else None

        template_table = RankTable.compile(schema, None, template)
        skyline_ids = tuple(
            sorted(
                sfs_skyline(
                    dataset.canonical_rows,
                    dataset.ids,
                    template_table,
                    backend=engine_backend,
                    store=store,
                )
            )
        )

        candidates = _candidate_values(dataset, template, values_per_attribute)

        if engine == "mdc":
            builder = _MDCBuilder(
                dataset, template, nominal_dims, skyline_ids,
                backend=engine_backend,
            )
        else:
            builder = _DirectBuilder(
                dataset, template, nominal_dims, skyline_ids,
                backend=engine_backend,
            )
        root = IPONode(None, frozenset())
        _grow(root, 0, {}, nominal_dims, candidates, builder)

        node_count = root.subtree_size()
        elapsed = time.perf_counter() - started
        storage = _storage_bytes(root, payload, len(skyline_ids))
        stats = TreeStats(
            engine=engine,
            payload=payload,
            node_count=node_count,
            skyline_size=len(skyline_ids),
            build_seconds=elapsed,
            storage_bytes=storage,
        )
        tree = cls(
            dataset,
            template,
            nominal_dims,
            candidates,
            skyline_ids,
            root,
            payload,
            stats,
        )
        if engine == "mdc":
            tree._refresh_mdcs = builder._mdcs
        return tree

    # ------------------------------------------------------------------
    # incremental refresh
    # ------------------------------------------------------------------
    def prime_refresh_baseline(
        self,
        data=None,
        *,
        base_skyline_ids: Optional[Iterable[int]] = None,
        backend=None,
    ) -> None:
        """Precompute the refresh diff baseline for a tree known in sync.

        :meth:`refresh` diffs each member's minimal disqualifying
        conditions against the baseline retained from the previous
        refresh (or from an MDC-engine build).  A *deserialized* tree
        (:func:`repro.ipo.serialize.tree_from_dict`) has no baseline,
        so its first refresh reconstructs one with a full
        base-skyline scan over ``self.dataset``.  A caller that knows
        the tree is currently **in sync** with ``data`` - the recovery
        path restoring a non-stale checkpoint - can prime the baseline
        here instead, passing the maintained base skyline as
        ``base_skyline_ids`` so the computation never scans the base
        data.  Priming a tree that is *not* in sync with ``data`` would
        make later refreshes miss flips - only do that when the very
        next refresh marks every old and new member dirty (which
        rewrites all entries from the new conditions, making the
        baseline's diff irrelevant; the recovery path restoring a
        stale checkpoint does exactly this).
        """
        engine = resolve_backend(backend)
        source = data if data is not None else self.dataset
        self._refresh_mdcs = compute_mdcs(
            source,
            self.skyline_ids,
            candidates=(
                list(base_skyline_ids)
                if base_skyline_ids is not None
                else None
            ),
            backend=engine,
        )

    def refresh(
        self,
        dirty_ids: Iterable[int] = (),
        *,
        data=None,
        skyline_ids: Optional[Iterable[int]] = None,
        base_skyline_ids: Optional[Iterable[int]] = None,
        backend=None,
    ) -> RefreshStats:
        """Re-align the tree with mutated data, reworking only dirty members.

        After rows were inserted into / deleted from the underlying
        data, the tree's root skyline ``S`` and the per-node
        disqualified sets may be stale.  A full rebuild re-enumerates
        every (node, member) pair - ``O(node_count * |S|)`` condition
        tests, the dominant cost of construction.  Refresh instead:

        1. recomputes ``S`` (or takes it from ``skyline_ids`` when an
           :class:`~repro.updates.incremental.IncrementalSkyline`
           maintainer already has it),
        2. recomputes the minimal disqualifying conditions in one
           vectorized pass and diffs them against the retained set -
           members whose conditions changed (a new base-skyline
           dominator appeared, or one vanished) join the **dirty set**
           alongside ``dirty_ids``, the members that entered and the
           members that left,
        3. walks the tree rewriting per-node membership **only for
           dirty members**; subtrees see no work at all for the
           (typically vast) clean majority, and a refresh with an empty
           dirty set skips the walk entirely.

        Parameters
        ----------
        dirty_ids:
            Member ids the caller already knows flipped (e.g. an
            update's :attr:`~repro.updates.incremental.UpdateEffect.dirty`
            set); ids outside the old and new skylines are ignored.
        data:
            The mutated data (anything exposing ``schema`` /
            ``canonical_rows`` / ``ids`` / ``columns``, e.g. a
            :class:`~repro.updates.dataset.DynamicDataset`).  Defaults
            to the tree's current dataset; the tree adopts it.
        skyline_ids:
            The already-maintained new template skyline; recomputed via
            the backend kernel when omitted.
        base_skyline_ids:
            The already-maintained base skyline ``SKY(R0)`` (candidate
            dominators for the MDC recompute).  When omitted,
            :func:`compute_mdcs` recomputes it with a full O(n) kernel
            scan - callers maintaining it incrementally (the serving
            layer's base maintainer) should pass it so a refresh costs
            O(|S| x |base|) condition work, never a base-data scan.
        backend:
            Execution backend for the recomputations (name, instance or
            ``None`` for the process default).
        """
        started = time.perf_counter()
        engine = resolve_backend(backend)
        source = data if data is not None else self.dataset
        rows = source.canonical_rows
        if skyline_ids is None:
            table = RankTable.compile(source.schema, None, self.template)
            store = source.columns if engine.vectorized else None
            new_s = tuple(
                sorted(
                    sfs_skyline(
                        rows, source.ids, table,
                        backend=engine, store=store,
                    )
                )
            )
        else:
            new_s = tuple(sorted(skyline_ids))
        old_set = frozenset(self.skyline_ids)
        new_set = frozenset(new_s)
        removed = old_set - new_set
        added = new_set - old_set

        old_mdcs = self._refresh_mdcs
        if old_mdcs is None:
            # "direct"-built tree: self.dataset is still the pre-mutation
            # data on the first refresh, so the retained baseline can be
            # reconstructed once here.
            old_mdcs = compute_mdcs(
                self.dataset, self.skyline_ids, backend=engine
            )
        new_mdcs = compute_mdcs(
            source,
            new_s,
            candidates=(
                list(base_skyline_ids)
                if base_skyline_ids is not None
                else None
            ),
            backend=engine,
        )

        dirty = (set(dirty_ids) | removed | added) & (old_set | new_set)
        for point_id in new_set & old_set:
            if set(new_mdcs[point_id]) != set(old_mdcs.get(point_id, ())):
                dirty.add(point_id)

        self.dataset = source
        self._refresh_mdcs = new_mdcs
        nodes_visited = entries_updated = 0
        if dirty:
            positions = template_positions(self.template, source.schema)
            addable = frozenset(dirty & new_set)
            nodes_visited, entries_updated = self._refresh_node(
                self.root, 0, {}, frozenset(dirty), addable,
                new_mdcs, positions, rows,
            )
        self.skyline_ids = new_s
        self._positions = {
            point_id: pos for pos, point_id in enumerate(new_s)
        }
        self._value_masks = None
        if self.payload == "bitmap":
            self._attach_masks()
        return RefreshStats(
            skyline_size=len(new_s),
            added=len(added),
            removed=len(removed),
            dirty=len(dirty),
            nodes_visited=nodes_visited,
            entries_updated=entries_updated,
            seconds=time.perf_counter() - started,
        )

    def _refresh_node(
        self,
        node: IPONode,
        depth: int,
        labels: Dict[int, int],
        dirty: frozenset,
        addable: frozenset,
        mdcs: Dict[int, List[DisqualifyingCondition]],
        positions: Dict[int, Dict[int, int]],
        rows,
    ) -> Tuple[int, int]:
        """Rewrite dirty members' membership in this subtree's ``A`` sets."""
        re_add = set()
        for point_id in addable:
            loser = rows[point_id]
            if any(
                cond.satisfied_by(labels, positions, loser)
                for cond in mdcs[point_id]
            ):
                re_add.add(point_id)
        updated = frozenset((node.disqualified - dirty) | re_add)
        entries = len(node.disqualified ^ updated)
        if entries:
            node.disqualified = updated
        visited = 1
        if depth < len(self.nominal_dims):
            dim = self.nominal_dims[depth]
            for vid, child in node.children.items():
                labels[dim] = vid
                child_stats = self._refresh_node(
                    child, depth + 1, labels, dirty, addable,
                    mdcs, positions, rows,
                )
                del labels[dim]
                visited += child_stats[0]
                entries += child_stats[1]
            if node.phi_child is not None:
                child_stats = self._refresh_node(
                    node.phi_child, depth + 1, labels, dirty, addable,
                    mdcs, positions, rows,
                )
                visited += child_stats[0]
                entries += child_stats[1]
        return visited, entries

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, preference: Optional[Preference] = None) -> List[int]:
        """Skyline ids for ``preference`` (Algorithm 1 + Theorem 2).

        The preference must refine the template; dimensions it leaves
        empty inherit the template's chain.  Raises
        :class:`UnsupportedQueryError` when the query names a value the
        tree has no node for (possible with IPO Tree-k).
        """
        chains = self._query_chains(preference)
        if self.payload == "bitmap":
            mask = evaluate_bitmap(self, chains)
            return [
                point_id
                for pos, point_id in enumerate(self.skyline_ids)
                if not (mask >> pos) & 1
            ]
        disqualified = evaluate_sets(self, chains)
        return [p for p in self.skyline_ids if p not in disqualified]

    def query_survivors(
        self, preference: Optional[Preference] = None
    ) -> List[int]:
        """Answer via the literal Algorithm 1/2 transcription.

        Same result as :meth:`query`; exists as the executable
        reference for the paper's printed pseudocode (survivor sets
        instead of accumulated disqualified sets).
        """
        chains = self._query_chains(preference)
        return sorted(evaluate_survivors(self, chains))

    def _query_chains(
        self, preference: Optional[Preference]
    ) -> Tuple[Tuple[int, ...], ...]:
        """Translate a preference into per-dimension value-id chains.

        Merges over the template (validating refinement) and checks that
        every chain value has a materialised node.
        """
        pref = preference if preference is not None else Preference.empty()
        merged = pref.merged_over(self.template)
        merged.validate_against(self.dataset.schema)
        chains: List[Tuple[int, ...]] = []
        for depth, dim in enumerate(self.nominal_dims):
            spec = self.dataset.schema[dim]
            chain = merged[spec.name]
            vids = tuple(
                spec.domain.index(value) for value in chain.choices  # type: ignore[union-attr]
            )
            available = set(self.candidates[depth])
            missing = [v for v in vids if v not in available]
            if missing:
                names = [spec.domain[v] for v in missing]  # type: ignore[index]
                raise UnsupportedQueryError(
                    f"IPO tree has no nodes for values {names!r} of "
                    f"attribute {spec.name!r} (built with restricted "
                    "values; route this query to Adaptive SFS)"
                )
            chains.append(vids)
        return tuple(chains)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def node_count(self) -> int:
        """Total number of tree nodes (the paper's ``O(c^m')`` figure)."""
        return self.stats.node_count

    def storage_bytes(self) -> int:
        """Analytic storage footprint of the materialised tree."""
        return self.stats.storage_bytes

    def value_masks(self) -> List[Dict[int, int]]:
        """Per-depth inverted bit masks: value id -> mask over S positions.

        Used by the bitmap evaluator to compute ``PSKY`` lookups with a
        single OR; built lazily.
        """
        if self._value_masks is None:
            rows = self.dataset.canonical_rows
            masks: List[Dict[int, int]] = []
            for dim in self.nominal_dims:
                per_value: Dict[int, int] = {}
                for pos, point_id in enumerate(self.skyline_ids):
                    vid = rows[point_id][dim]
                    per_value[vid] = per_value.get(vid, 0) | (1 << pos)
                masks.append(per_value)
            self._value_masks = masks
        return self._value_masks

    def _attach_masks(self) -> None:
        """Fill every node's ``mask`` from its frozenset payload."""
        positions = self._positions
        for node in self.root.walk():
            mask = 0
            for point_id in node.disqualified:
                mask |= 1 << positions[point_id]
            node.mask = mask


# ----------------------------------------------------------------------
# construction helpers
# ----------------------------------------------------------------------
class _DirectBuilder:
    """Disqualified sets via a skyline run over ``S`` per node."""

    def __init__(
        self,
        dataset: Dataset,
        template: Preference,
        nominal_dims: Tuple[int, ...],
        skyline_ids: Tuple[int, ...],
        backend=None,
    ) -> None:
        self._dataset = dataset
        self._template = template
        self._skyline_ids = skyline_ids
        self._skyline_set = frozenset(skyline_ids)
        self._backend = resolve_backend(backend)
        self._store = (
            dataset.columns if self._backend.vectorized else None
        )

    def disqualified(self, labels: Mapping[int, int]) -> frozenset:
        schema = self._dataset.schema
        pref = self._template
        for dim, vid in labels.items():
            spec = schema[dim]
            pref = pref.with_dimension(
                spec.name, ImplicitPreference((spec.domain[vid],))  # type: ignore[index]
            )
        table = RankTable.compile(schema, pref)
        surviving = sfs_skyline(
            self._dataset.canonical_rows,
            self._skyline_ids,
            table,
            backend=self._backend,
            store=self._store,
        )
        return frozenset(self._skyline_set - set(surviving))


class _MDCBuilder:
    """Disqualified sets via minimal disqualifying conditions (paper)."""

    def __init__(
        self,
        dataset: Dataset,
        template: Preference,
        nominal_dims: Tuple[int, ...],
        skyline_ids: Tuple[int, ...],
        backend=None,
    ) -> None:
        self._rows = dataset.canonical_rows
        self._skyline_ids = skyline_ids
        self._mdcs: Dict[int, List[DisqualifyingCondition]] = compute_mdcs(
            dataset, skyline_ids, backend=backend
        )
        self._template_positions = template_positions(template, dataset.schema)

    def disqualified(self, labels: Mapping[int, int]) -> frozenset:
        out = set()
        rows = self._rows
        positions = self._template_positions
        for point_id in self._skyline_ids:
            loser = rows[point_id]
            for condition in self._mdcs[point_id]:
                if condition.satisfied_by(labels, positions, loser):
                    out.add(point_id)
                    break
        return frozenset(out)


def _grow(
    node: IPONode,
    depth: int,
    labels: Dict[int, int],
    nominal_dims: Tuple[int, ...],
    candidates: Tuple[Tuple[int, ...], ...],
    builder,
) -> None:
    """Recursively create the children of ``node`` for dimension ``depth``."""
    if depth == len(nominal_dims):
        return
    dim = nominal_dims[depth]
    for vid in candidates[depth]:
        labels[dim] = vid
        child = IPONode((dim, vid), builder.disqualified(labels))
        node.children[vid] = child
        _grow(child, depth + 1, labels, nominal_dims, candidates, builder)
        del labels[dim]
    phi = IPONode(None, node.disqualified)
    node.phi_child = phi
    _grow(phi, depth + 1, labels, nominal_dims, candidates, builder)


def _candidate_values(
    dataset: Dataset,
    template: Preference,
    values_per_attribute: Union[None, int, Mapping[str, int]],
) -> Tuple[Tuple[int, ...], ...]:
    """Value ids materialised per nominal dimension (IPO Tree-k support)."""
    schema = dataset.schema
    out: List[Tuple[int, ...]] = []
    for dim in schema.nominal_indices:
        spec = schema[dim]
        domain = spec.domain
        if values_per_attribute is None:
            keep: Sequence[object] = domain  # type: ignore[assignment]
        else:
            if isinstance(values_per_attribute, int):
                wanted: object = values_per_attribute
            else:
                wanted = values_per_attribute.get(spec.name, len(domain))  # type: ignore[union-attr]
            if isinstance(wanted, int):
                if wanted <= 0:
                    raise PreferenceError(
                        f"values_per_attribute must be positive, got {wanted}"
                    )
                keep = dataset.most_frequent(spec.name, wanted)
            else:
                # Explicit value list (e.g. mined from a query history).
                keep = list(wanted)
                for value in keep:
                    if value not in domain:  # type: ignore[operator]
                        raise PreferenceError(
                            f"value {value!r} not in domain of {spec.name!r}"
                        )
            # Template values must stay materialised: every legal query
            # chain starts with them.
            for value in template[spec.name].choices:
                if value not in keep:
                    keep = list(keep) + [value]
        out.append(tuple(domain.index(v) for v in keep))  # type: ignore[union-attr]
    return tuple(out)


def _storage_bytes(root: IPONode, payload: str, skyline_size: int) -> int:
    """Analytic storage of the tree (see module constants)."""
    total = 0
    mask_bytes = (skyline_size + 7) // 8
    for node in root.walk():
        total += _BYTES_PER_NODE
        if payload == "bitmap":
            total += mask_bytes
        else:
            total += _BYTES_PER_ID * len(node.disqualified)
    return total
