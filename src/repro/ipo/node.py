"""IPO-tree nodes.

An IPO-tree (implicit preference order tree, Section 3.1 of the paper)
of depth ``m' + 1`` stores, for every combination of first-order
preferences ``v < *`` over the ``m'`` nominal dimensions (with ``φ`` =
"no preference" as an extra choice per dimension), the set ``A`` of
root-skyline points disqualified by that combination.

A node at depth ``d`` (root = depth 0) fixes the choices for the first
``d`` nominal dimensions; its children enumerate the choices for
nominal dimension number ``d``.  Following Figure 2 of the paper, ``A``
is stored *cumulatively*: relative to the root skyline ``S``, for the
node's full path preference (e.g. node 6 of Figure 2, path
``T < *, G < *``, has ``A = {d, e, f}``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Optional, Tuple


class IPONode:
    """One node of an IPO-tree.

    Attributes
    ----------
    label:
        ``(dimension index, value id)`` of the first-order preference
        this node adds, or ``None`` for the root and for φ nodes.
    disqualified:
        Cumulative set ``A`` of root-skyline point ids disqualified by
        the path preference ending at this node.  Empty for the root.
    mask:
        The same set as a bit mask over root-skyline positions, filled
        in only when the tree uses the bitmap payload.
    children:
        ``value id -> IPONode`` for the next nominal dimension.
    phi_child:
        The ``φ`` ("no extra preference") child for the next nominal
        dimension; ``None`` at the leaves.
    """

    __slots__ = ("label", "disqualified", "mask", "children", "phi_child")

    def __init__(
        self,
        label: Optional[Tuple[int, int]],
        disqualified: FrozenSet[int],
    ) -> None:
        self.label = label
        self.disqualified = disqualified
        self.mask: Optional[int] = None
        self.children: Dict[int, "IPONode"] = {}
        self.phi_child: Optional["IPONode"] = None

    def __repr__(self) -> str:
        tag = "root/phi" if self.label is None else f"D{self.label[0]}={self.label[1]}"
        return (
            f"IPONode({tag}, |A|={len(self.disqualified)}, "
            f"children={len(self.children)}{'+phi' if self.phi_child else ''})"
        )

    def walk(self) -> Iterator["IPONode"]:
        """Depth-first traversal of the subtree rooted here."""
        yield self
        for child in self.children.values():
            yield from child.walk()
        if self.phi_child is not None:
            yield from self.phi_child.walk()

    def subtree_size(self) -> int:
        """Number of nodes in this subtree (including self)."""
        return sum(1 for _ in self.walk())
