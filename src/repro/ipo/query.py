"""IPO-tree query evaluation: Algorithms 1 and 2 of the paper.

The evaluators below work in *complement space*: instead of passing
survivor sets ``X = S - A`` around (Algorithm 1 as printed), they pass
accumulated disqualified sets, which the paper itself recommends under
"Implementation" in Section 3.2:

    if ``A(R~')`` and ``A(R~'')`` are the sets of disqualified points,
    and ``B`` is the set of points in ``A(R~'')`` with ``Di`` values in
    ``{v1, ..., v_{x-1}}``, the accumulated set for ``R~'''`` is
    ``A(R~') ∪ (A(R~'') - B)``.

This is the exact complement of Theorem 2's
``SKY(R~''') = (SKY(R~') ∩ SKY(R~'')) ∪ PSKY(R~')`` and is verified
against it by the property tests.

Note on the printed pseudocode: Algorithm 1 line 14 calls
``merge(d + 1, Q, R~')`` while ``merge`` consumes the entries of
dimension ``d`` - the dimension that was split at lines 8-13.  We merge
on the split dimension, which reproduces the worked Example 1
(queries QA-QD) exactly; see tests/test_paper_examples.py.

Two payloads:

* :func:`evaluate_sets` - ``A`` sets as Python sets,
* :func:`evaluate_bitmap` - ``A`` sets as integer bit masks over the
  root-skyline positions, with per-value inverted masks replacing the
  ``PSKY`` membership scan (the paper's bitmap + inverted list variant).
"""

from __future__ import annotations

from typing import FrozenSet, Sequence, Set, Tuple

from repro.exceptions import UnsupportedQueryError
from repro.ipo.node import IPONode


def evaluate_sets(tree, chains: Sequence[Tuple[int, ...]]) -> Set[int]:
    """Accumulated disqualified ids for the query ``chains``.

    ``chains[depth]`` holds the value-id chain of the query's implicit
    preference on the ``depth``-th nominal dimension (empty tuple = no
    preference; the template chain was already merged in by the caller).
    """
    return _eval_sets(tree, 0, tree.root, set(), chains)


def _eval_sets(
    tree,
    depth: int,
    node: IPONode,
    disqualified: Set[int],
    chains: Sequence[Tuple[int, ...]],
) -> Set[int]:
    if depth == len(tree.nominal_dims):
        return disqualified
    chain = chains[depth]
    if not chain:
        # Algorithm 1 lines 3-5: follow the phi child, no new
        # disqualifications at this level.
        return _eval_sets(tree, depth + 1, node.phi_child, disqualified, chains)

    # Lines 7-13: one sub-query per chain entry, each seeded with the
    # child's cumulative A.
    sub_results = []
    for vid in chain:
        child = _child(node, vid, tree, depth)
        sub_results.append(
            _eval_sets(
                tree,
                depth + 1,
                child,
                disqualified | child.disqualified,
                chains,
            )
        )

    # Algorithm 2 on the split dimension, in complement space:
    # A''' = A' ∪ (A'' − B),  B = {p ∈ A'' : p.D_d ∈ {v1..v_{i-1}}}.
    dim = tree.nominal_dims[depth]
    rows = tree.dataset.canonical_rows
    merged = sub_results[0]
    for i in range(1, len(chain)):
        prefix = set(chain[:i])
        merged = merged | {
            p for p in sub_results[i] if rows[p][dim] not in prefix
        }
    return merged


def evaluate_bitmap(tree, chains: Sequence[Tuple[int, ...]]) -> int:
    """Accumulated disqualified *bit mask* for the query ``chains``."""
    return _eval_bitmap(tree, 0, tree.root, 0, chains)


def _eval_bitmap(
    tree,
    depth: int,
    node: IPONode,
    disqualified: int,
    chains: Sequence[Tuple[int, ...]],
) -> int:
    if depth == len(tree.nominal_dims):
        return disqualified
    chain = chains[depth]
    if not chain:
        return _eval_bitmap(
            tree, depth + 1, node.phi_child, disqualified, chains
        )

    sub_results = []
    for vid in chain:
        child = _child(node, vid, tree, depth)
        mask = child.mask if child.mask is not None else 0
        sub_results.append(
            _eval_bitmap(tree, depth + 1, child, disqualified | mask, chains)
        )

    value_masks = tree.value_masks()[depth]
    merged = sub_results[0]
    prefix_mask = 0
    for i in range(1, len(chain)):
        prefix_mask |= value_masks.get(chain[i - 1], 0)
        merged |= sub_results[i] & ~prefix_mask
    return merged


def evaluate_survivors(tree, chains: Sequence[Tuple[int, ...]]) -> Set[int]:
    """Literal transcription of Algorithms 1 and 2 (survivor space).

    Passes survivor sets ``X = S - A`` around exactly as the printed
    pseudocode does (``query`` lines 1-15, ``merge`` lines 1-7), with
    the single documented correction that the merge operates on the
    dimension that was split.  Kept as the executable reference for the
    complement-space evaluators above; the test-suite pins all three to
    each other and to brute force.
    """
    return _eval_survivors(tree, 0, tree.root, set(tree.skyline_ids), chains)


def _eval_survivors(
    tree,
    depth: int,
    node: IPONode,
    survivors: Set[int],
    chains: Sequence[Tuple[int, ...]],
) -> Set[int]:
    x = survivors  # Algorithm 1 line 1: X <- S
    if depth == len(tree.nominal_dims):
        return x
    chain = chains[depth]
    if not chain:
        # Lines 3-5: the phi child, same candidate set.
        return _eval_survivors(
            tree, depth + 1, node.phi_child, survivors, chains
        )
    # Lines 7-13: one sub-query per entry, seeded with S - A.
    queue = []
    for vid in chain:
        child = _child(node, vid, tree, depth)
        queue.append(
            _eval_survivors(
                tree,
                depth + 1,
                child,
                survivors - child.disqualified,
                chains,
            )
        )
    # Algorithm 2 on the split dimension.
    dim = tree.nominal_dims[depth]
    rows = tree.dataset.canonical_rows
    x = queue[0]
    for i in range(2, len(chain) + 1):
        y = queue[i - 1]
        prefix = set(chain[: i - 1])  # entries 1 .. i-1
        z = {p for p in x if rows[p][dim] in prefix}  # PSKY
        x = (x & y) | z
    return x


def _child(node: IPONode, vid: int, tree, depth: int) -> IPONode:
    try:
        return node.children[vid]
    except KeyError:
        dim = tree.nominal_dims[depth]
        spec = tree.dataset.schema[dim]
        raise UnsupportedQueryError(
            f"no IPO-tree node for value id {vid} "
            f"({spec.domain[vid]!r}) of attribute {spec.name!r}"
        ) from None
