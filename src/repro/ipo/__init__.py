"""IPO-tree: the partial-materialisation index of Section 3."""

from repro.ipo.node import IPONode
from repro.ipo.stats import (
    TreeAnalysis,
    analyze,
    full_tree_node_count,
    naive_materialization_count,
    paper_upper_bound,
)
from repro.ipo.tree import IPOTree, TreeStats

__all__ = [
    "IPONode",
    "IPOTree",
    "TreeAnalysis",
    "TreeStats",
    "analyze",
    "full_tree_node_count",
    "naive_materialization_count",
    "paper_upper_bound",
]
