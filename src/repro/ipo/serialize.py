"""Serialisation of built IPO-trees.

The IPO-tree is the expensive-to-build, cheap-to-query index of the
pair, so the natural deployment builds it offline and ships it to query
servers.  This module provides a stable JSON-compatible representation:

* :func:`tree_to_dict` / :func:`tree_from_dict` - in-memory round trip,
* :func:`save_tree` / :func:`load_tree` - JSON files.

The *dataset is not embedded* (it can be arbitrarily large and usually
lives in the catalogue store already); loading requires a dataset whose
schema matches the one the tree was built against, and the schema
fingerprint is verified on load.  Payload masks for the bitmap variant
are reconstructed rather than stored - they derive deterministically
from the sets.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.core.attributes import Schema
from repro.core.dataset import Dataset
from repro.core.preferences import ImplicitPreference, Preference
from repro.exceptions import IndexError_
from repro.ipo.node import IPONode
from repro.ipo.tree import IPOTree, TreeStats

FORMAT_VERSION = 1


def schema_fingerprint(schema: Schema) -> List[List[object]]:
    """A JSON-friendly structural description of a schema."""
    return [
        [spec.name, spec.kind.value, list(spec.domain) if spec.domain else None]
        for spec in schema
    ]


def preference_to_dict(preference: Preference) -> Dict[str, List[object]]:
    """JSON-friendly form of a preference: attribute -> chain."""
    return {name: list(pref.choices) for name, pref in preference.items()}


def preference_from_dict(data: Dict[str, List[object]]) -> Preference:
    """Inverse of :func:`preference_to_dict`."""
    return Preference(
        {name: ImplicitPreference(tuple(chain)) for name, chain in data.items()}
    )


def tree_to_dict(tree: IPOTree) -> dict:
    """Serialise a built tree (without its dataset)."""

    def node_to_dict(node: IPONode) -> dict:
        return {
            "label": list(node.label) if node.label else None,
            "disqualified": sorted(node.disqualified),
            "children": {
                str(vid): node_to_dict(child)
                for vid, child in sorted(node.children.items())
            },
            "phi": node_to_dict(node.phi_child) if node.phi_child else None,
        }

    return {
        "format_version": FORMAT_VERSION,
        "schema": schema_fingerprint(tree.dataset.schema),
        "template": preference_to_dict(tree.template),
        "payload": tree.payload,
        "skyline_ids": list(tree.skyline_ids),
        "candidates": [list(c) for c in tree.candidates],
        "stats": {
            "engine": tree.stats.engine,
            "payload": tree.stats.payload,
            "node_count": tree.stats.node_count,
            "skyline_size": tree.stats.skyline_size,
            "build_seconds": tree.stats.build_seconds,
            "storage_bytes": tree.stats.storage_bytes,
        },
        "root": node_to_dict(tree.root),
    }


def tree_from_dict(dataset: Dataset, data: dict) -> IPOTree:
    """Reconstruct a tree over ``dataset`` from its serialised form.

    Raises :class:`IndexError_` when the format version or the schema
    does not match - querying a tree against different data silently
    returns wrong skylines, so mismatches are fatal.
    """
    if data.get("format_version") != FORMAT_VERSION:
        raise IndexError_(
            f"unsupported IPO-tree format {data.get('format_version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    if data["schema"] != schema_fingerprint(dataset.schema):
        raise IndexError_(
            "serialised tree was built against a different schema"
        )

    def node_from_dict(payload: dict) -> IPONode:
        label = payload["label"]
        node = IPONode(
            tuple(label) if label else None,
            frozenset(payload["disqualified"]),
        )
        node.children = {
            int(vid): node_from_dict(child)
            for vid, child in payload["children"].items()
        }
        node.phi_child = (
            node_from_dict(payload["phi"]) if payload["phi"] else None
        )
        return node

    stats = TreeStats(**data["stats"])
    tree = IPOTree(
        dataset=dataset,
        template=preference_from_dict(data["template"]),
        nominal_dims=dataset.schema.nominal_indices,
        candidates=tuple(tuple(c) for c in data["candidates"]),
        skyline_ids=tuple(data["skyline_ids"]),
        root=node_from_dict(data["root"]),
        payload=data["payload"],
        stats=stats,
    )
    return tree


def save_tree(tree: IPOTree, path: Union[str, Path]) -> None:
    """Write a built tree to a JSON file."""
    with open(path, "w") as handle:
        json.dump(tree_to_dict(tree), handle)


def load_tree(dataset: Dataset, path: Union[str, Path]) -> IPOTree:
    """Load a tree from a JSON file, bound to ``dataset``."""
    with open(path) as handle:
        return tree_from_dict(dataset, json.load(handle))
