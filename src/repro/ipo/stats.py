"""Size analysis of IPO-trees vs the materialisation alternatives.

Backs the paper's Section 3.1 "Tree Size" discussion with measurable
numbers:

* the full IPO-tree has ``sum_{d=0..m'} prod_{i<=d} (c_i + 1)`` nodes
  (the paper quotes the dominating term ``O(c^m')``),
* full materialisation of every implicit preference needs
  ``prod_i sum_{j<=c_i} c_i!/(c_i-j)!`` entries (the paper quotes the
  bound ``O((c * c!)^m')``),

and :func:`analyze` extracts a per-level payload profile from a built
tree (how many disqualified ids each level stores), which is what the
storage panel of every figure ultimately measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.ipo.tree import IPOTree
from repro.materialize.full import preferences_per_attribute


def full_tree_node_count(cardinalities: Sequence[int]) -> int:
    """Exact node count of a full IPO-tree (phi children included)."""
    total = 1
    level = 1
    for c in cardinalities:
        level *= c + 1
        total += level
    return total


def restricted_tree_node_count(values_per_level: Sequence[int]) -> int:
    """Node count of an IPO Tree-k materialising ``k_i`` values."""
    return full_tree_node_count(values_per_level)


def naive_materialization_count(
    cardinalities: Sequence[int], max_order: int = None
) -> int:
    """Entries a full skyline materialisation would store."""
    total = 1
    for c in cardinalities:
        order = c if max_order is None else min(max_order, c)
        total *= preferences_per_attribute(c, order)
    return total


def paper_upper_bound(cardinality: int, num_nominal: int) -> int:
    """The bound the paper quotes: ``(c * c!)^m'``."""
    return (cardinality * math.factorial(cardinality)) ** num_nominal


@dataclass(frozen=True)
class TreeAnalysis:
    """Structural profile of a built IPO-tree."""

    node_count: int
    skyline_size: int
    payload_ids_total: int
    payload_ids_per_level: Tuple[int, ...]
    nodes_per_level: Tuple[int, ...]
    max_payload: int
    empty_payload_nodes: int

    @property
    def mean_payload(self) -> float:
        """Average disqualified-set size across all nodes."""
        return (
            self.payload_ids_total / self.node_count
            if self.node_count
            else 0.0
        )


def analyze(tree: IPOTree) -> TreeAnalysis:
    """Walk a built tree and profile its payloads per level."""
    per_level_nodes: Dict[int, int] = {}
    per_level_ids: Dict[int, int] = {}
    max_payload = 0
    empty = 0
    total_ids = 0

    def visit(node, depth: int) -> None:
        nonlocal max_payload, empty, total_ids
        per_level_nodes[depth] = per_level_nodes.get(depth, 0) + 1
        size = len(node.disqualified)
        per_level_ids[depth] = per_level_ids.get(depth, 0) + size
        total_ids += size
        max_payload = max(max_payload, size)
        if size == 0:
            empty += 1
        for child in node.children.values():
            visit(child, depth + 1)
        if node.phi_child is not None:
            visit(node.phi_child, depth + 1)

    visit(tree.root, 0)
    depths = range(max(per_level_nodes) + 1)
    return TreeAnalysis(
        node_count=sum(per_level_nodes.values()),
        skyline_size=len(tree.skyline_ids),
        payload_ids_total=total_ids,
        payload_ids_per_level=tuple(per_level_ids.get(d, 0) for d in depths),
        nodes_per_level=tuple(per_level_nodes.get(d, 0) for d in depths),
        max_payload=max_payload,
        empty_payload_nodes=empty,
    )
