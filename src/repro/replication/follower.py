"""A read replica that tails the primary's WAL stream.

The follower's whole safety story is one rule: **verify, apply, then
advance - or refuse and stand still.**  Each shipped frame is the
CRC-prefixed WAL line the primary fsynced; before applying it the
follower re-checks the CRC (a frame cut mid-record in transit fails
here), checks that the frame's version stamp continues its replica's
applied version exactly, applies it through the *same* mutation
methods crash recovery replays, and checks the produced version
against the stamp.  Only then does the stream offset advance - by the
frame's byte length, so the next fetch resumes at a frame boundary.
Any failure leaves the offset untouched: a torn frame is simply
re-fetched intact, a discontinuity forces a re-sync from a fresh
snapshot, and in neither case can a half-applied or out-of-order
mutation reach the replica.  The replica therefore always equals the
primary *at some version*: it may lag, it never lies.

Re-syncs swap in a whole new :class:`~repro.serve.service.SkylineService`
built storage-lessly from the primary's newest snapshot
(:meth:`~repro.serve.service.SkylineService.from_snapshot`); the old
replica keeps answering queries until the swap, so a rotation costs
availability nothing.  The server front end reads the replica through
:class:`Follower.service` on every request for exactly this reason.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.exceptions import ReplicationError, ReproError, StorageError
from repro.net.protocol import REPLICATION_WINDOW_DEFAULT_BYTES
from repro.replication.stream import ReplicationSource
from repro.serve.service import SkylineService
from repro.storage import verify_frame


class Follower:
    """Tail a :class:`~repro.replication.stream.ReplicationSource`.

    Drive it either synchronously - :meth:`sync` then repeated
    :meth:`poll` calls, as the unit tests do - or as a daemon thread
    via :meth:`start`/:meth:`stop`.  ``service`` is the live read-only
    replica (``None`` until the first sync lands); the server front
    end maps ``ready == False`` to ``503 replica-syncing``.

    Counters (``frames_applied``, ``resyncs``, ``torn_refusals``) and
    the ``applied_version`` / ``primary_version`` / ``lag`` gauges are
    exported on the replica server's ``/metrics`` and ``/healthz``.
    """

    def __init__(
        self,
        source: ReplicationSource,
        *,
        backend=None,
        planner_config=None,
        cache_capacity: int = 256,
        workers: Optional[int] = None,
        partitions: Optional[int] = None,
        partition_strategy: str = "sorted",
        window_bytes: int = REPLICATION_WINDOW_DEFAULT_BYTES,
        poll_interval: float = 0.25,
    ) -> None:
        if window_bytes < 1:
            raise ValueError(f"window_bytes must be >= 1, got {window_bytes}")
        if poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be positive, got {poll_interval}"
            )
        self._source = source
        self._backend = backend
        self._planner_config = planner_config
        self._cache_capacity = cache_capacity
        self._workers = workers
        self._partitions = partitions
        self._partition_strategy = partition_strategy
        self._window_bytes = window_bytes
        self._poll_interval = poll_interval
        self._service: Optional[SkylineService] = None
        #: ``"syncing"`` (next poll bootstraps from a snapshot) or
        #: ``"tailing"`` (next poll fetches the next WAL window).
        self._state = "syncing"
        self._base: Optional[int] = None
        self._offset = 0
        self._caught_up = False
        self._primary_version = 0
        self._frames_applied = 0
        self._resyncs = 0
        self._torn_refusals = 0
        self._last_error: Optional[str] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- observable state --------------------------------------------------
    @property
    def service(self) -> Optional[SkylineService]:
        """The live replica service (``None`` before the first sync)."""
        return self._service

    @property
    def ready(self) -> bool:
        """Whether the follower has a replica to answer queries from."""
        return self._service is not None

    @property
    def applied_version(self) -> int:
        """The data version the replica currently serves (0 = none)."""
        service = self._service
        return service.version if service is not None else 0

    @property
    def primary_version(self) -> int:
        """The primary's version as of the last stream exchange."""
        with self._lock:
            return self._primary_version

    @property
    def lag(self) -> int:
        """How many versions the replica trails the primary by."""
        return max(0, self.primary_version - self.applied_version)

    @property
    def frames_applied(self) -> int:
        """Total WAL frames verified and applied since construction."""
        with self._lock:
            return self._frames_applied

    @property
    def resyncs(self) -> int:
        """Snapshot bootstraps, the initial one included."""
        with self._lock:
            return self._resyncs

    @property
    def torn_refusals(self) -> int:
        """Frames refused for failing CRC verification in transit."""
        with self._lock:
            return self._torn_refusals

    def status(self) -> dict:
        """The replication block of the replica server's ``/healthz``."""
        with self._lock:
            primary_version = self._primary_version
            frames_applied = self._frames_applied
            resyncs = self._resyncs
            torn_refusals = self._torn_refusals
            last_error = self._last_error
            base = self._base
            offset = self._offset
        applied = self.applied_version
        return {
            "ready": self.ready,
            "state": self._state,
            "applied_version": applied,
            "primary_version": primary_version,
            "lag": max(0, primary_version - applied),
            "base": base,
            "offset": offset,
            "frames_applied": frames_applied,
            "resyncs": resyncs,
            "torn_refusals": torn_refusals,
            "last_error": last_error,
        }

    # -- the replication protocol ------------------------------------------
    def sync(self) -> None:
        """(Re-)bootstrap the replica from the primary's newest snapshot.

        Builds a fresh storage-less service from the shipped snapshot
        document and only then swaps it in, so an existing replica
        keeps answering (at its old, still-exact version) for the
        whole duration.  Tailing restarts at offset 0 of the snapshot's
        generation - the stream address space is ``(base version, byte
        offset)``.
        """
        payload = self._source.snapshot()
        if not isinstance(payload, dict) or "document" not in payload:
            raise ReplicationError(
                "malformed replication snapshot payload: expected an object "
                "with 'document', got "
                f"{type(payload).__name__}"
            )
        version = payload.get("version")
        if not isinstance(version, int) or isinstance(version, bool):
            raise ReplicationError(
                f"replication snapshot carries no integer 'version' "
                f"(got {version!r})"
            )
        service = SkylineService.from_snapshot(
            payload["document"],
            backend=self._backend,
            planner_config=self._planner_config,
            cache_capacity=self._cache_capacity,
            workers=self._workers,
            partitions=self._partitions,
            partition_strategy=self._partition_strategy,
        )
        if service.version != version:
            raise ReplicationError(
                f"snapshot document restored to version {service.version}, "
                f"but the payload claims {version} - refusing to tail from "
                f"an inconsistent base"
            )
        with self._lock:
            self._resyncs += 1
            self._observe_primary_locked(payload.get("primary_version"))
            self._base = version
            self._offset = 0
        self._caught_up = False
        self._service = service
        self._state = "tailing"

    def poll(self) -> int:
        """One protocol step: sync if needed, else fetch + apply a window.

        Returns the number of frames applied.  Raises
        :class:`ReplicationError` (offset *not* advanced past the bad
        frame) when the stream ships something unsafe to apply.
        """
        if self._service is None or self._state != "tailing":
            self.sync()
        payload = self._source.window(
            self._base, self._offset, self._window_bytes
        )
        if not isinstance(payload, dict):
            raise ReplicationError(
                f"malformed replication window payload: "
                f"{type(payload).__name__}"
            )
        with self._lock:
            self._observe_primary_locked(payload.get("primary_version"))
        if payload.get("gone"):
            # The base generation was folded away by a checkpoint (or
            # the fault plan pretends it was): re-sync on the next poll.
            self._state = "syncing"
            self._caught_up = False
            return 0
        frames = payload.get("frames")
        if not isinstance(frames, list):
            raise ReplicationError(
                "replication window payload has no 'frames' list"
            )
        applied = 0
        for text in frames:
            self._apply_frame(text)
            applied += 1
        self._caught_up = bool(payload.get("end_of_log", True))
        return applied

    def _apply_frame(self, text: object) -> None:
        """Verify one shipped frame, apply it, then advance the offset."""
        service = self._service
        try:
            frame = text.encode("ascii")
        except (AttributeError, UnicodeEncodeError):
            with self._lock:
                self._torn_refusals += 1
            raise ReplicationError(
                "shipped frame is not ASCII text - refusing to apply"
            ) from None
        try:
            record = verify_frame(frame)
        except StorageError as exc:
            # The classic torn frame: cut mid-record in transit.  The
            # offset stays put, so the next window re-ships it intact.
            with self._lock:
                self._torn_refusals += 1
            raise ReplicationError(
                f"shipped frame failed verification at base {self._base} "
                f"offset {self._offset}: {exc}; re-fetching from the last "
                f"applied offset"
            ) from exc
        stamped = record.get("version")
        expected = service.version + 1
        if stamped != expected:
            self._state = "syncing"
            raise ReplicationError(
                f"stream discontinuity: frame stamped version {stamped!r}, "
                f"replica expects {expected}; re-syncing from a fresh "
                f"snapshot"
            )
        op = record.get("op")
        try:
            if op == "insert":
                produced = service.insert_rows(
                    [tuple(row) for row in record["rows"]]
                ).version
            elif op == "delete":
                produced = service.delete_rows(
                    [int(point_id) for point_id in record["ids"]]
                ).version
            elif op == "compact":
                service.compact()
                produced = service.version
            else:
                raise ReplicationError(
                    f"shipped frame has unknown op {op!r}; re-syncing"
                )
        except ReplicationError:
            self._state = "syncing"
            raise
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            self._state = "syncing"
            raise ReplicationError(
                f"shipped frame could not be applied: {exc}; re-syncing"
            ) from exc
        if produced != stamped:
            self._state = "syncing"
            raise ReplicationError(
                f"apply diverged: frame stamped version {stamped}, replica "
                f"produced {produced}; re-syncing"
            )
        with self._lock:
            self._offset += len(frame)
            self._frames_applied += 1

    def _observe_primary_locked(self, version: object) -> None:
        if isinstance(version, int) and not isinstance(version, bool):
            self._primary_version = max(self._primary_version, version)

    # -- driving it --------------------------------------------------------
    def run(self, *, stop: Optional[threading.Event] = None) -> None:
        """Tail until ``stop`` is set; failures back off and retry.

        Every :class:`~repro.exceptions.ReproError` - transport
        trouble, a torn frame, a discontinuity - is recorded in
        ``status()["last_error"]`` and retried after ``poll_interval``;
        :meth:`poll` has already arranged the safe reaction (hold the
        offset, or re-sync).
        """
        stop = stop if stop is not None else self._stop
        while not stop.is_set():
            try:
                self.poll()
            except ReproError as exc:
                with self._lock:
                    self._last_error = str(exc)
                stop.wait(self._poll_interval)
                continue
            if self._state == "tailing" and self._caught_up:
                stop.wait(self._poll_interval)

    def start(self) -> "Follower":
        """Run the tail loop on a daemon thread (idempotent guard)."""
        if self._thread is not None:
            raise ReplicationError("follower is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.run, name="repro-follower", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the tail loop and join the thread (idempotent)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
            self._thread = None

    def wait_for_version(self, version: int, timeout: float = 10.0) -> bool:
        """Block until the replica serves ``version`` (True) or time out."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.ready and self.applied_version >= version:
                return True
            time.sleep(0.01)
        return False

    def close(self) -> None:
        """Stop tailing and release the source and the replica service."""
        self.stop()
        self._source.close()
        service = self._service
        if service is not None:
            service.close()

    def __enter__(self) -> "Follower":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
