"""Read fan-out: mutations to the primary, queries to replicas.

The router's consistency contract is **bounded staleness pinned to the
version stamp**: every answer and mutation report in the protocol
carries the data ``version`` it was computed at, the router remembers
the highest version it has ever seen (its *watermark*), and a replica
answer is only accepted if its version is at least
``watermark - max_staleness``.  With the default ``max_staleness=0``
that is read-your-writes: after your own insert, a replica that has
not applied it yet is rejected as stale and the query falls back to
the primary, which is always exact.  A replica can never serve a
*wrong* answer in any case - followers only apply verified frames - so
staleness is the only thing the router has to bound.

Replica calls deliberately default to a single attempt: with more
targets available, failing over IS the retry, and burning a backoff
schedule on a syncing replica (``503``) only adds latency.  The
primary keeps the full PR-8 retry/breaker schedule since it is the
last resort.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.preferences import Preference
from repro.exceptions import ReproError
from repro.net.client import NetRequestError, NetResponse
from repro.net.resilient import ResilientClient, RetryPolicy


class FanOutClient:
    """Route one application's traffic across a primary and replicas.

    Single-threaded like the clients it wraps (one connection each).
    ``max_staleness`` is in *versions*: 0 = read-your-writes, ``n``
    accepts answers up to ``n`` mutations behind the watermark.
    """

    def __init__(
        self,
        primary: Tuple[str, int],
        replicas: Sequence[Tuple[str, int]] = (),
        *,
        max_staleness: int = 0,
        timeout: float = 30.0,
        policy: Optional[RetryPolicy] = None,
        replica_policy: Optional[RetryPolicy] = None,
        seed: Optional[int] = None,
    ) -> None:
        if max_staleness < 0:
            raise ValueError(
                f"max_staleness must be >= 0, got {max_staleness}"
            )
        host, port = primary
        self._primary = ResilientClient(
            host, port, timeout=timeout, policy=policy, seed=seed
        )
        if replica_policy is None:
            replica_policy = RetryPolicy(max_attempts=1)
        self._replicas = tuple(
            ResilientClient(
                h,
                p,
                timeout=timeout,
                policy=replica_policy,
                seed=None if seed is None else seed + index + 1,
            )
            for index, (h, p) in enumerate(replicas)
        )
        self.max_staleness = max_staleness
        self._watermark = 0
        self._next = 0
        self.replica_served = 0
        self.primary_served = 0
        self.stale_rejected = 0
        self.failovers = 0

    @property
    def watermark(self) -> int:
        """The highest data version any answer has shown this client."""
        return self._watermark

    # -- mutations (primary only) ------------------------------------------
    def insert(self, rows: Sequence[Sequence[object]]) -> NetResponse:
        """``/insert`` on the primary, advancing the watermark."""
        return self._mutate(lambda: self._primary.insert(rows))

    def delete(self, ids: Sequence[int]) -> NetResponse:
        """``/delete`` on the primary, advancing the watermark."""
        return self._mutate(lambda: self._primary.delete(ids))

    def compact(self) -> NetResponse:
        """``/compact`` on the primary, advancing the watermark."""
        return self._mutate(lambda: self._primary.compact())

    def _mutate(self, send) -> NetResponse:
        response = send()
        if response.status == 200 and isinstance(response.json, dict):
            self._observe(response.json.get("version"))
        return response

    # -- queries (replicas first, bounded staleness) -----------------------
    def query(
        self,
        preference: Optional[Preference] = None,
        *,
        use_cache: bool = True,
        min_version: Optional[int] = None,
    ) -> NetResponse:
        """One routed query; ``min_version`` overrides the watermark floor."""
        required = (
            self._watermark - self.max_staleness
            if min_version is None
            else min_version
        )
        for client in self._rotation():
            try:
                response = client.query(preference, use_cache=use_cache)
            except ReproError:
                # Dead or syncing replica: the next target is the retry.
                self.failovers += 1
                continue
            if response.status != 200:
                self.failovers += 1
                continue
            version = (
                response.json.get("version", 0)
                if isinstance(response.json, dict)
                else 0
            )
            if isinstance(version, int) and version >= required:
                self._observe(version)
                self.replica_served += 1
                return response
            self.stale_rejected += 1
        response = self._primary.query(preference, use_cache=use_cache)
        if response.status == 200 and isinstance(response.json, dict):
            self._observe(response.json.get("version"))
        self.primary_served += 1
        return response

    def query_ids(
        self, preference: Optional[Preference] = None, **kwargs
    ) -> Tuple[int, ...]:
        """Sorted skyline ids of one routed query (raises on non-200)."""
        response = self.query(preference, **kwargs)
        if response.status != 200:
            raise NetRequestError("/query", response)
        return tuple(response.json["ids"])

    def _rotation(self) -> Tuple[ResilientClient, ...]:
        if not self._replicas:
            return ()
        start = self._next
        self._next += 1
        count = len(self._replicas)
        return tuple(
            self._replicas[(start + step) % count] for step in range(count)
        )

    def _observe(self, version: object) -> None:
        if isinstance(version, int) and not isinstance(version, bool):
            self._watermark = max(self._watermark, version)

    # -- bookkeeping -------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """Routing outcomes so far (the smoke and the tests assert these)."""
        return {
            "replica_served": self.replica_served,
            "primary_served": self.primary_served,
            "stale_rejected": self.stale_rejected,
            "failovers": self.failovers,
            "watermark": self._watermark,
        }

    def close(self) -> None:
        """Close the primary and every replica client."""
        self._primary.close()
        for client in self._replicas:
            client.close()

    def __enter__(self) -> "FanOutClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
