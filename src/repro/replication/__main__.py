"""The replication smoke: a one-process scale-out cluster, checked.

::

    python -m repro.replication --smoke

boots, over real sockets on ephemeral ports:

* a durable **primary** (WAL + snapshots in a temp dir),
* ``--followers`` read replicas tailing its WAL stream,
* ``--shards`` shard servers behind a :class:`ShardCoordinator`,
* a :class:`FanOutClient` routing over the primary + replicas,

then runs the mutate-then-query convergence script: replicas must
reject writes (``403``), catch up to every primary mutation, and
answer queries *identically* to the primary at the same version; the
coordinator's merged skylines must equal a single-node service over
the same rows before and after mutations; the router must honour
read-your-writes.  Any failed check prints and exits 1 - this is the
CI replication leg.  ``REPRO_FAULTS`` is honoured, so the leg can run
with the stream fault site armed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from contextlib import ExitStack
from typing import List, Tuple

from repro import faults
from repro.core.skyline import skyline
from repro.datagen.generator import SyntheticConfig, generate
from repro.datagen.queries import generate_preferences
from repro.net.client import NetClient
from repro.net.config import ServerConfig
from repro.net.resilient import RetryPolicy
from repro.net.server import ServerThread
from repro.replication.coordinator import ShardCoordinator, stripe_dataset
from repro.replication.follower import Follower
from repro.replication.router import FanOutClient
from repro.replication.stream import HttpReplicationSource
from repro.serve.service import SkylineService


def build_parser() -> argparse.ArgumentParser:
    """The smoke check's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-replication",
        description="Replication / scatter-gather smoke check "
        "(docs/replication.md).",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="boot primary + followers + shards in one "
                        "process, run the convergence script, exit 0/1")
    parser.add_argument("--points", type=int, default=400,
                        help="synthetic dataset size (default: 400)")
    parser.add_argument("--followers", type=int, default=2,
                        help="read replicas to boot (default: 2)")
    parser.add_argument("--shards", type=int, default=2,
                        help="shard servers to boot (default: 2)")
    parser.add_argument("--seed", type=int, default=0,
                        help="dataset/workload seed (default: 0)")
    return parser


def run_smoke(args) -> int:
    """Boot the cluster, run the convergence script, report, exit code."""
    failures: List[str] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        print(
            f"replication-smoke: {name}: {'ok' if ok else 'FAIL ' + detail}",
            file=sys.stderr, flush=True,
        )
        if not ok:
            failures.append(f"{name}: {detail}")

    dataset = generate(SyntheticConfig(
        num_points=max(args.points, args.shards), num_numeric=2,
        num_nominal=2, cardinality=6, seed=args.seed,
    ))
    preferences = [None] + generate_preferences(
        dataset, 1, 4, seed=args.seed
    )
    config = ServerConfig(host="127.0.0.1", port=0)
    policy = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.25)

    with tempfile.TemporaryDirectory() as tmp, ExitStack() as stack:
        # -- primary -------------------------------------------------------
        primary = SkylineService(
            dataset, storage_dir=os.path.join(tmp, "primary")
        )
        stack.callback(primary.close)
        primary_server = stack.enter_context(
            ServerThread(primary, config, debug=False)
        )
        primary_addr = (primary_server.host, primary_server.port)

        # -- followers -----------------------------------------------------
        followers: List[Follower] = []
        replica_addrs: List[Tuple[str, int]] = []
        for index in range(args.followers):
            follower = Follower(
                HttpReplicationSource(
                    *primary_addr, policy=policy, seed=args.seed + index
                ),
                poll_interval=0.05,
            )
            follower.sync()
            follower.start()
            stack.callback(follower.close)
            server = stack.enter_context(
                ServerThread(
                    follower.service, config, follower=follower, debug=False
                )
            )
            followers.append(follower)
            replica_addrs.append((server.host, server.port))

        # -- shards --------------------------------------------------------
        shard_addrs: List[Tuple[str, int]] = []
        for stripe in stripe_dataset(dataset, args.shards):
            shard_service = SkylineService(stripe)
            stack.callback(shard_service.close)
            server = stack.enter_context(
                ServerThread(shard_service, config, debug=False)
            )
            shard_addrs.append((server.host, server.port))
        coordinator = ShardCoordinator(
            dataset, shard_addrs, policy=policy, seed=args.seed
        )
        stack.callback(coordinator.close)

        # -- replica role + convergence ------------------------------------
        with NetClient(*replica_addrs[0]) as replica_client:
            health = replica_client.healthz()
            check(
                "replica-role",
                health.status == 200
                and health.json.get("role") == "replica",
                repr(health.json),
            )
            refused = replica_client.insert([list(dataset.row(0))])
            check(
                "replica-rejects-writes",
                refused.status == 403
                and refused.json["error"]["kind"] == "read-only-replica",
                repr(refused),
            )

        router = FanOutClient(
            primary_addr, replica_addrs, policy=policy, seed=args.seed
        )
        stack.callback(router.close)

        inserted = router.insert([list(dataset.row(0))])
        check(
            "primary-insert",
            inserted.status == 200 and inserted.json.get("version") == 1,
            repr(inserted.json),
        )
        deleted = router.delete([1])
        check(
            "primary-delete",
            deleted.status == 200 and deleted.json.get("version") == 2,
            repr(deleted.json),
        )

        for index, follower in enumerate(followers):
            check(
                f"follower-{index}-converges",
                follower.wait_for_version(primary.version, timeout=15.0),
                f"applied={follower.applied_version} "
                f"primary={primary.version}",
            )

        with NetClient(*primary_addr) as primary_client:
            for query_index, preference in enumerate(preferences):
                expected = primary_client.query_ids(preference)
                for index, addr in enumerate(replica_addrs):
                    with NetClient(*addr) as replica_client:
                        got = replica_client.query_ids(preference)
                    check(
                        f"replica-{index}-differential-q{query_index}",
                        got == expected,
                        f"replica={got} primary={expected}",
                    )

        routed = router.query(preferences[1])
        check(
            "router-read-your-writes",
            routed.status == 200
            and routed.json.get("version", -1) >= router.watermark,
            f"{routed.json and routed.json.get('version')} < "
            f"{router.watermark}",
        )

        # -- scatter-gather ------------------------------------------------
        for query_index, preference in enumerate(preferences):
            direct = skyline(dataset, preference).ids
            merged = coordinator.query(preference)
            check(
                f"scatter-q{query_index}",
                merged.ids == direct,
                f"merged={merged.ids[:10]}... direct={direct[:10]}...",
            )
        # Mirror coordinator mutations into a single-node service over
        # the same rows: append order == gid order, so answers must
        # stay identical id-for-id.
        update = coordinator.insert([dataset.row(1)])
        extra = SkylineService(dataset)
        stack.callback(extra.close)
        extra.insert_rows([dataset.row(1)])
        merged = coordinator.query(preferences[1])
        direct = extra.query(preferences[1], use_cache=False).ids
        check(
            "scatter-after-insert",
            merged.ids == tuple(direct),
            f"merged={merged.ids[:10]} direct={tuple(direct)[:10]} "
            f"(gids {update.gids})",
        )
        coordinator.delete([update.gids[0]])
        extra.delete_rows([update.gids[0]])
        merged = coordinator.query(preferences[2])
        direct = extra.query(preferences[2], use_cache=False).ids
        check(
            "scatter-after-delete",
            merged.ids == tuple(direct),
            f"merged={merged.ids[:10]} direct={tuple(direct)[:10]}",
        )

        summary = {
            "followers": [f.status() for f in followers],
            "router": router.counters(),
            "shards": args.shards,
        }
        print(json.dumps(summary, indent=2), file=sys.stderr)

    for failure in failures:
        print(f"REPLICATION SMOKE FAILURE: {failure}", file=sys.stderr)
    print(
        "replication smoke " + ("ok" if not failures else "FAILED"),
        flush=True,
    )
    return 1 if failures else 0


def main(argv=None) -> int:
    """CLI entry point (arms REPRO_FAULTS, then runs the smoke)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    plan = faults.plan_from_env()
    if plan is not None:
        faults.install(plan)
        print(
            f"fault injection ARMED from ${faults.FAULTS_ENV_VAR}: "
            f"{len(plan.rules)} rule(s), seed {plan.seed}",
            file=sys.stderr,
        )
    if not args.smoke:
        parser.error("nothing to do; pass --smoke")
    return run_smoke(args)


if __name__ == "__main__":
    raise SystemExit(main())
