"""Scale-out layer: WAL-shipped read replicas and sharded scatter-gather.

A single :class:`~repro.serve.service.SkylineService` is bounded by one
machine.  This package grows the system along the two classic axes
without touching the core algorithms:

* **Read replication** (:mod:`repro.replication.follower`) - a
  :class:`Follower` bootstraps from the primary's newest snapshot
  (``POST /replication/snapshot``) and then tails the primary's
  write-ahead log over offset-addressed windows
  (``POST /replication/wal``).  Every shipped frame is CRC-verified and
  version-checked before it is applied through the *same* mutation path
  crash recovery replays, so a replica is always an exact copy of the
  primary at some recent version: it may **lag**, it never lies.
* **Sharding** (:mod:`repro.replication.coordinator`) - a
  :class:`ShardCoordinator` stripes rows across shard servers, asks
  each for its *local* skyline in parallel and merges by computing the
  skyline of the union of local skylines.  The union contains every
  global skyline point (a globally undominated point is undominated on
  its own shard) and the merge sweep removes the cross-shard dominated
  rest, so the answer is exact - the same two-stage argument the
  parallel engine's merge proof rests on.
* **Routing** (:mod:`repro.replication.router`) - a
  :class:`FanOutClient` sends mutations to the primary and fans
  queries out across replicas under a bounded-staleness contract
  pinned to the ``version`` stamp every answer carries.

``python -m repro.replication --smoke`` boots a primary, two followers
and a two-shard scatter-gather cluster in one process and checks
mutate-then-query convergence end to end (the CI replication leg).
"""

from repro.replication.coordinator import (
    ScatterResult,
    ScatterUpdate,
    ShardCoordinator,
    stripe_dataset,
)
from repro.replication.follower import Follower
from repro.replication.router import FanOutClient
from repro.replication.stream import (
    HttpReplicationSource,
    LocalReplicationSource,
    ReplicationSource,
)

__all__ = [
    "FanOutClient",
    "Follower",
    "HttpReplicationSource",
    "LocalReplicationSource",
    "ReplicationSource",
    "ScatterResult",
    "ScatterUpdate",
    "ShardCoordinator",
    "stripe_dataset",
]
