"""Sharded scatter-gather: local skylines per shard, exact global merge.

**Why the merge is exact.**  Stripe the rows across shards; ask each
shard for the skyline of *its* rows only; take the skyline of the
union of those local skylines.  A point dominated by nothing globally
is dominated by nothing on its own shard, so every global skyline
point survives into the union; and because dominance under one
preference is transitive, any union point dominated by a point on
another shard is removed by the final sweep while no global skyline
point can be.  This is the same two-stage local-skylines-then-merge
argument the parallel engine's partitioned executor is built on - the
coordinator just runs stage one over the network instead of over
threads.

**Global ids.**  The coordinator addresses rows by *global id* = the
order they entered the cluster.  With round-robin striping
(:func:`stripe_dataset`) and every shard ingesting in arrival order,
the mapping is arithmetic: ``shard_of(gid) = gid % shards`` and
``local_of(gid) = gid // shards``, and for the initial load the global
id *equals the original row index* - so a coordinator answer is
directly comparable against a single-node service over the same
dataset (the differential tests do exactly that).  The invariant only
holds while every mutation flows through the coordinator and no shard
is ever compacted behind its back; the insert path verifies the local
ids each shard assigns and refuses loudly on the first mismatch.

**Failure policy.**  Shard calls ride the PR-8 resilience machinery
(retries with jittered backoff, idempotency-keyed mutations, circuit
breaker).  If a shard still cannot answer, the query fails with
:class:`~repro.exceptions.ShardError` - a merged skyline is only exact
over *all* local skylines, so a partial union would be a silently
wrong answer, and refusing is the whole point.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dataset import Dataset
from repro.core.preferences import Preference
from repro.core.skyline import skyline
from repro.exceptions import DatasetError, ReproError, ShardError
from repro.net.resilient import ResilientClient, RetryPolicy


def stripe_dataset(dataset: Dataset, shards: int) -> List[Dataset]:
    """Round-robin split: row ``i`` goes to shard ``i % shards``.

    Each stripe preserves arrival order, so shard ``s``'s local id
    ``l`` holds original row ``l * shards + s`` - the gid arithmetic
    the coordinator relies on.  Boot each shard server over its stripe.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    rows = [dataset.row(i) for i in range(len(dataset))]
    return [
        Dataset(dataset.schema, rows[shard::shards])
        for shard in range(shards)
    ]


@dataclass(frozen=True)
class ScatterResult:
    """One merged scatter-gather answer.

    ``ids`` are **global** ids (== original row indices for the initial
    load); ``shard_versions`` the data version each local answer was
    computed at; ``candidates`` how many union rows the merge swept.
    """

    ids: Tuple[int, ...]
    shard_versions: Tuple[int, ...]
    candidates: int
    merge_seconds: float
    seconds: float

    def __len__(self) -> int:
        return len(self.ids)


class ScatterUpdate:
    """One applied cluster mutation: global ids + per-shard versions."""

    __slots__ = ("kind", "gids", "shard_versions")

    def __init__(
        self,
        kind: str,
        gids: Tuple[int, ...],
        shard_versions: Dict[int, int],
    ) -> None:
        self.kind = kind
        self.gids = gids
        self.shard_versions = shard_versions


class ShardCoordinator:
    """Scatter queries and mutations across striped shard servers.

    Construct it over the *full* dataset and the shard addresses; each
    shard server must already be serving its
    :func:`stripe_dataset` stripe.  Mutations must flow through the
    coordinator (it owns the gid arithmetic) and shards must never be
    compacted independently - compaction remaps local ids.

    Thread-safety: one coordinator may be shared by callers holding
    their own locks; internally a single lock guards the gid
    bookkeeping while queries fan out on a private thread pool with
    one keep-alive client per shard (clients are single-threaded, so
    each shard's calls are serialised through its pool slot).
    """

    def __init__(
        self,
        dataset: Dataset,
        addresses: Sequence[Tuple[str, int]],
        *,
        template: Optional[Preference] = None,
        backend=None,
        timeout: float = 30.0,
        policy: Optional[RetryPolicy] = None,
        seed: Optional[int] = None,
    ) -> None:
        if not addresses:
            raise ValueError("need at least one shard address")
        self.schema = dataset.schema
        self.template = template
        self.backend = backend
        self.shards = len(addresses)
        self._clients = tuple(
            ResilientClient(
                host,
                port,
                timeout=timeout,
                policy=policy,
                seed=None if seed is None else seed + index,
            )
            for index, (host, port) in enumerate(addresses)
        )
        self._lock = threading.Lock()
        self._rows: Dict[int, Tuple[object, ...]] = {
            gid: dataset.row(gid) for gid in range(len(dataset))
        }
        #: Rows ever appended per shard == the next local id it assigns.
        self._appended = [
            len(range(shard, len(dataset), self.shards))
            for shard in range(self.shards)
        ]
        self._next_gid = len(dataset)
        self._pool = ThreadPoolExecutor(
            max_workers=self.shards, thread_name_prefix="repro-scatter"
        )

    # -- gid arithmetic ----------------------------------------------------
    def shard_of(self, gid: int) -> int:
        """Which shard holds global id ``gid`` (round-robin striping)."""
        return gid % self.shards

    def local_of(self, gid: int) -> int:
        """``gid``'s local point id on its shard."""
        return gid // self.shards

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    # -- queries -----------------------------------------------------------
    def query(
        self,
        preference: Optional[Preference] = None,
        *,
        use_cache: bool = True,
    ) -> ScatterResult:
        """The exact global skyline, or :class:`ShardError` - never partial."""
        started = time.perf_counter()
        futures = [
            self._pool.submit(self._shard_query, s, preference, use_cache)
            for s in range(self.shards)
        ]
        local_ids: List[Tuple[int, ...]] = [()] * self.shards
        versions = [0] * self.shards
        failures: List[str] = []
        for shard, future in enumerate(futures):
            try:
                local_ids[shard], versions[shard] = future.result()
            except ShardError as exc:
                failures.append(str(exc))
        if failures:
            raise ShardError(
                f"scatter-gather refused: {len(failures)} of "
                f"{self.shards} shard(s) unanswerable - a merged skyline "
                f"is only exact over all shards ({failures[0]})"
            )
        candidates = [
            local * self.shards + shard
            for shard, ids in enumerate(local_ids)
            for local in ids
        ]
        merge_started = time.perf_counter()
        with self._lock:
            try:
                rows = [self._rows[gid] for gid in candidates]
            except KeyError as exc:
                raise ShardError(
                    f"a shard answered with local ids mapping to global id "
                    f"{exc.args[0]}, unknown to the coordinator - the shard "
                    f"was mutated outside this coordinator"
                ) from None
        union = Dataset(self.schema, rows)
        merged = skyline(
            union,
            preference,
            template=self.template,
            backend=self.backend,
        )
        done = time.perf_counter()
        return ScatterResult(
            ids=tuple(sorted(candidates[i] for i in merged.ids)),
            shard_versions=tuple(versions),
            candidates=len(candidates),
            merge_seconds=done - merge_started,
            seconds=done - started,
        )

    def _shard_query(
        self, shard: int, preference: Optional[Preference], use_cache: bool
    ) -> Tuple[Tuple[int, ...], int]:
        try:
            response = self._clients[shard].query(
                preference, use_cache=use_cache
            )
        except ReproError as exc:
            raise ShardError(f"shard {shard} unreachable: {exc}") from exc
        if response.status != 200 or not isinstance(response.json, dict):
            raise ShardError(
                f"shard {shard} /query answered {response.status}: "
                f"{response.text[:200]}"
            )
        return (
            tuple(response.json["ids"]),
            int(response.json.get("version", 0)),
        )

    # -- mutations ---------------------------------------------------------
    def insert(self, rows: Sequence[Sequence[object]]) -> ScatterUpdate:
        """Append rows cluster-wide, assigning gids in arrival order.

        Each shard's sub-batch is one idempotency-keyed ``/insert`` (so
        per-shard it is all-or-nothing); across shards there is no
        atomicity - on failure the applied shards keep their rows, the
        failed shards' rows are rolled out of the coordinator's map,
        their gids become permanent holes, and :class:`ShardError`
        reports exactly which rows did not land.
        """
        staged = [tuple(row) for row in rows]
        with self._lock:
            batches: List[List[Tuple[int, int, Tuple[object, ...]]]] = [
                [] for _ in range(self.shards)
            ]
            gids: List[int] = []
            for row in staged:
                gid = self._next_gid
                self._next_gid += 1
                shard = gid % self.shards
                batches[shard].append((gid, self._appended[shard], row))
                self._appended[shard] += 1
                gids.append(gid)
        futures = {
            shard: self._pool.submit(self._shard_insert, shard, batch)
            for shard, batch in enumerate(batches)
            if batch
        }
        versions: Dict[int, int] = {}
        failures: List[Tuple[int, str]] = []
        for shard, future in futures.items():
            try:
                versions[shard] = future.result()
            except ShardError as exc:
                failures.append((shard, str(exc)))
        with self._lock:
            for shard, batch in enumerate(batches):
                if shard in versions:
                    for gid, _, row in batch:
                        self._rows[gid] = row
                elif batches[shard]:
                    # Nothing landed on this shard (its one request is
                    # atomic): un-reserve the local ids it never assigned.
                    self._appended[shard] -= len(batch)
        if failures:
            lost = [
                gid
                for shard, batch in enumerate(batches)
                if shard not in versions
                for gid, _, _ in batch
            ]
            raise ShardError(
                f"insert incomplete: shard(s) "
                f"{sorted(shard for shard, _ in failures)} did not apply "
                f"their sub-batch (global ids {lost} were not inserted): "
                f"{failures[0][1]}"
            )
        return ScatterUpdate("insert", tuple(gids), versions)

    def _shard_insert(
        self, shard: int, batch: List[Tuple[int, int, Tuple[object, ...]]]
    ) -> int:
        try:
            response = self._clients[shard].insert(
                [row for _, _, row in batch]
            )
        except ReproError as exc:
            raise ShardError(f"shard {shard} unreachable: {exc}") from exc
        if response.status != 200 or not isinstance(response.json, dict):
            raise ShardError(
                f"shard {shard} /insert answered {response.status}: "
                f"{response.text[:200]}"
            )
        assigned = response.json.get("point_ids")
        expected = [local for _, local, _ in batch]
        if list(assigned or ()) != expected:
            raise ShardError(
                f"shard {shard} assigned local ids {assigned!r} where the "
                f"coordinator expected {expected} - the shard was mutated "
                f"(or compacted) outside this coordinator; refusing to "
                f"continue with broken gid arithmetic"
            )
        return int(response.json.get("version", 0))

    def delete(self, gids: Sequence[int]) -> ScatterUpdate:
        """Delete rows by global id (unknown gids raise before any I/O)."""
        targets = [int(gid) for gid in gids]
        with self._lock:
            for gid in targets:
                if gid not in self._rows:
                    raise DatasetError(
                        f"unknown global id {gid} (deleted, never inserted, "
                        f"or lost to a failed insert)"
                    )
        per_shard: Dict[int, List[int]] = {}
        for gid in targets:
            per_shard.setdefault(gid % self.shards, []).append(gid)
        futures = {
            shard: self._pool.submit(self._shard_delete, shard, batch)
            for shard, batch in per_shard.items()
        }
        versions: Dict[int, int] = {}
        failures: List[Tuple[int, str]] = []
        for shard, future in futures.items():
            try:
                versions[shard] = future.result()
            except ShardError as exc:
                failures.append((shard, str(exc)))
        with self._lock:
            for shard, batch in per_shard.items():
                if shard in versions:
                    for gid in batch:
                        self._rows.pop(gid, None)
        if failures:
            raise ShardError(
                f"delete incomplete: shard(s) "
                f"{sorted(shard for shard, _ in failures)} did not apply "
                f"their sub-batch: {failures[0][1]}"
            )
        return ScatterUpdate("delete", tuple(targets), versions)

    def _shard_delete(self, shard: int, batch: List[int]) -> int:
        try:
            response = self._clients[shard].delete(
                [gid // self.shards for gid in batch]
            )
        except ReproError as exc:
            raise ShardError(f"shard {shard} unreachable: {exc}") from exc
        if response.status != 200 or not isinstance(response.json, dict):
            raise ShardError(
                f"shard {shard} /delete answered {response.status}: "
                f"{response.text[:200]}"
            )
        return int(response.json.get("version", 0))

    # -- lifecycle ---------------------------------------------------------
    def healthz(self) -> Dict[int, dict]:
        """Each shard's ``/healthz`` body (reachable shards only)."""
        out: Dict[int, dict] = {}
        for shard, client in enumerate(self._clients):
            try:
                response = client.healthz()
            except ReproError:
                continue
            if isinstance(response.json, dict):
                out[shard] = response.json
        return out

    def close(self) -> None:
        """Shut the pool down and close every shard client."""
        self._pool.shutdown(wait=True)
        for client in self._clients:
            client.close()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
