"""Where a follower's replication stream comes from.

A :class:`~repro.replication.follower.Follower` is transport-agnostic:
it consumes the two-verb stream contract below and never cares whether
the bytes crossed a socket.  :class:`LocalReplicationSource` binds the
contract directly to a primary :class:`~repro.serve.service.SkylineService`
in the same process (unit tests, benchmarks);
:class:`HttpReplicationSource` speaks the ``/replication/*`` wire
endpoints through a :class:`~repro.net.resilient.ResilientClient`, so
transient network trouble is retried with jittered backoff and a
circuit breaker before the follower ever sees it.

Both return the exact payload shapes of
:meth:`~repro.serve.service.SkylineService.replication_snapshot` and
:meth:`~repro.serve.service.SkylineService.replication_window` - the
HTTP source only unwraps transport status codes, it never reinterprets
the stream.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import ReplicationError
from repro.net.resilient import ResilientClient, RetryPolicy


class ReplicationSource:
    """The two-verb stream contract a follower tails.

    ``snapshot()`` returns the bootstrap payload (``version`` /
    ``document`` / ``primary_version``); ``window(base, offset,
    max_bytes)`` returns one offset-addressed WAL window (``gone`` /
    ``frames`` / ``next_offset`` / ``end_of_log`` /
    ``primary_version``).  Implementations raise
    :class:`~repro.exceptions.ReproError` subclasses on failure - the
    follower's run loop treats any of them as "back off and retry".
    """

    def snapshot(self) -> dict:
        """The primary's newest checkpoint (the bootstrap payload)."""
        raise NotImplementedError

    def window(self, base: int, offset: int, max_bytes: int) -> dict:
        """One offset-addressed WAL window of generation ``base``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any transport resources (idempotent)."""


class LocalReplicationSource(ReplicationSource):
    """Ship the stream of an in-process primary service directly."""

    def __init__(self, service) -> None:
        self._service = service

    def snapshot(self) -> dict:
        """The wrapped service's bootstrap payload, no transport."""
        return self._service.replication_snapshot()

    def window(self, base: int, offset: int, max_bytes: int) -> dict:
        """The wrapped service's WAL window, no transport."""
        return self._service.replication_window(base, offset, max_bytes)


class HttpReplicationSource(ReplicationSource):
    """Tail a remote primary over the ``/replication/*`` endpoints.

    Transport-level trouble (connection errors, ``429``/``503``) is
    absorbed by the wrapped :class:`ResilientClient`; anything that
    still comes back non-``200`` - a primary without storage answers
    ``409 replication-unavailable``, a draining one ``503`` past the
    retry budget - surfaces as :class:`ReplicationError` so the
    follower backs off and retries rather than misreading an error
    body as a stream payload.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        policy: Optional[RetryPolicy] = None,
        seed: Optional[int] = None,
        client: Optional[ResilientClient] = None,
    ) -> None:
        self._client = (
            client
            if client is not None
            else ResilientClient(
                host, port, timeout=timeout, policy=policy, seed=seed
            )
        )

    def snapshot(self) -> dict:
        """``POST /replication/snapshot`` (unwrapped payload or raise)."""
        return self._payload(
            self._client.replication_snapshot(), "/replication/snapshot"
        )

    def window(self, base: int, offset: int, max_bytes: int) -> dict:
        """``POST /replication/wal`` (unwrapped payload or raise)."""
        return self._payload(
            self._client.replication_wal(base, offset, max_bytes),
            "/replication/wal",
        )

    def close(self) -> None:
        """Close the wrapped resilient client."""
        self._client.close()

    @staticmethod
    def _payload(response, path: str) -> dict:
        if response.status != 200 or not isinstance(response.json, dict):
            raise ReplicationError(
                f"{path} answered {response.status}: {response.text[:200]}"
            )
        return response.json
