"""Backend equivalence: the numpy engine must match the reference.

Property-based cross-checks (hypothesis) over randomized datasets and
preferences assert that both registered backends return identical
skylines and identical ``compare()`` verdicts - including the paper's
Section 4.2 subtlety that two *distinct* unlisted nominal values share
the default rank yet are incomparable.  Also covers the registry
(selection, env var, fallback) and the columnar store itself.

Every numpy-dependent test is skipped when NumPy is absent, so the
suite stays green on the pure-Python CI leg.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import ALGORITHMS
from repro.core.attributes import Schema, nominal, numeric_min
from repro.core.dataset import Dataset
from repro.core.dominance import (
    DOMINATED,
    DOMINATES,
    EQUAL,
    INCOMPARABLE,
    RankTable,
)
from repro.core.preferences import ImplicitPreference, Preference
from repro.core.skyline import skyline
from repro.datagen.generator import SyntheticConfig, generate
from repro.engine import (
    BACKEND_ENV_VAR,
    available_backends,
    default_backend_name,
    get_backend,
    numpy_available,
    registered_backends,
    resolve_backend,
    set_default_backend,
)
from repro.engine.base import Backend
from repro.exceptions import EngineError
from repro.mdc.mdc import compute_mdcs

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

DOMAIN_A = ("a0", "a1", "a2", "a3")
DOMAIN_B = ("b0", "b1", "b2")

SCHEMA = Schema(
    [
        numeric_min("x"),
        numeric_min("y"),
        nominal("A", DOMAIN_A),
        nominal("B", DOMAIN_B),
    ]
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Small integer coordinates force ties and duplicates; small domains
# force dense preference interactions - the regimes where the unlisted-
# value tie-break and duplicate handling hide bugs.
rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 3),
        st.sampled_from(DOMAIN_A),
        st.sampled_from(DOMAIN_B),
    ),
    min_size=1,
    max_size=40,
)


def chain_strategy(domain):
    return st.lists(
        st.sampled_from(domain), unique=True, min_size=0, max_size=len(domain)
    )


preference_strategy = st.builds(
    lambda a, b: Preference(
        {"A": ImplicitPreference(tuple(a)), "B": ImplicitPreference(tuple(b))}
    ),
    chain_strategy(DOMAIN_A),
    chain_strategy(DOMAIN_B),
)


@needs_numpy
class TestBackendEquivalence:
    """Both backends agree on every kernel output."""

    @given(rows=rows_strategy, pref=preference_strategy)
    @SETTINGS
    def test_skylines_identical_across_backends_and_algorithms(
        self, rows, pref
    ):
        dataset = Dataset(SCHEMA, rows)
        reference = skyline(dataset, pref, backend="python").ids
        for algorithm in ("sfs", "bnl", "bruteforce", "dandc", "bitmap"):
            for backend in ("python", "numpy", "bitset"):
                result = skyline(
                    dataset, pref, algorithm=algorithm, backend=backend
                )
                assert result.ids == reference, (algorithm, backend)

    @given(rows=rows_strategy, pref=preference_strategy)
    @SETTINGS
    def test_compare_many_matches_reference_compare(self, rows, pref):
        dataset = Dataset(SCHEMA, rows)
        table = RankTable.compile(SCHEMA, pref)
        ids = list(dataset.ids)
        expected = [
            [table.compare(dataset.canonical(p), dataset.canonical(q)) for q in ids]
            for p in ids
        ]
        for backend_name in ("python", "numpy"):
            backend = get_backend(backend_name)
            ctx = backend.prepare(dataset.canonical_rows, table)
            got = [backend.compare_many(ctx, p, ids) for p in ids]
            assert got == expected, backend_name

    @given(rows=rows_strategy, pref=preference_strategy)
    @SETTINGS
    def test_dominance_masks_match_reference(self, rows, pref):
        dataset = Dataset(SCHEMA, rows)
        table = RankTable.compile(SCHEMA, pref)
        ids = list(dataset.ids)
        rows_c = dataset.canonical_rows
        expected_dom = [
            [table.dominates(rows_c[p], rows_c[q]) for q in ids] for p in ids
        ]
        for backend_name in ("python", "numpy"):
            backend = get_backend(backend_name)
            ctx = backend.prepare(rows_c, table)
            for p in ids:
                assert backend.dominates_mask(ctx, p, ids) == expected_dom[p]
                assert backend.dominated_mask(ctx, p, ids) == [
                    expected_dom[q][p] for q in ids
                ]
            dominated = backend.dominated_any(ctx, ids, ids)
            assert dominated == [any(expected_dom[q][p] for q in ids) for p in ids]

    @given(rows=rows_strategy, pref=preference_strategy)
    @SETTINGS
    def test_scores_match_reference(self, rows, pref):
        dataset = Dataset(SCHEMA, rows)
        table = RankTable.compile(SCHEMA, pref)
        ids = list(dataset.ids)
        expected = [table.score(dataset.canonical(i)) for i in ids]
        for backend_name in ("python", "numpy"):
            backend = get_backend(backend_name)
            ctx = backend.prepare(dataset.canonical_rows, table)
            got = backend.scores(ctx, ids)
            assert got == pytest.approx(expected)
            loose = backend.score_rows(
                table, [dataset.canonical(i) for i in ids]
            )
            assert loose == pytest.approx(expected)

    @given(rows=rows_strategy)
    @SETTINGS
    def test_mdc_conditions_identical_across_backends(self, rows):
        dataset = Dataset(SCHEMA, rows)
        via_python = compute_mdcs(dataset, dataset.ids, backend="python")
        via_numpy = compute_mdcs(dataset, dataset.ids, backend="numpy")
        assert via_python == via_numpy


@needs_numpy
class TestUnlistedValueIncomparability:
    """Section 4.2: distinct unlisted values share the default rank but
    are incomparable - on every backend."""

    def dataset(self):
        # Identical numerics; the rows differ only on nominal values
        # that the preference leaves unlisted.
        return Dataset(
            SCHEMA,
            [
                (1, 1, "a1", "b0"),
                (1, 1, "a2", "b0"),
                (0, 0, "a0", "b0"),
            ],
        )

    def test_both_unlisted_rows_stay_in_the_skyline(self):
        data = self.dataset()
        pref = Preference({"A": "a0 < *"})
        for backend in available_backends():
            result = skyline(data, pref, backend=backend)
            # Row 2 dominates nothing nominal-wise relevant... rows 0/1
            # tie on rank but hold distinct unlisted values, so neither
            # is dominated by the other; row 2 dominates both on the
            # numerics only if nominal dim allows - it holds the listed
            # a0, strictly better ranked than unlisted a1/a2.
            assert result.ids == (2,), backend

    def test_unlisted_tie_blocks_dominance_both_ways(self):
        data = self.dataset()
        pref = Preference({"A": "a0 < *"})
        table = RankTable.compile(SCHEMA, pref)
        for backend_name in available_backends():
            backend = get_backend(backend_name)
            ctx = backend.prepare(data.canonical_rows, table)
            assert backend.compare_many(ctx, 0, [1]) == [INCOMPARABLE]
            assert backend.compare_many(ctx, 1, [0]) == [INCOMPARABLE]
            assert backend.dominates_mask(ctx, 0, [1]) == [False]
            assert backend.dominates_mask(ctx, 1, [0]) == [False]

    def test_equal_rows_compare_equal_and_never_dominate(self):
        data = Dataset(SCHEMA, [(1, 1, "a1", "b0"), (1, 1, "a1", "b0")])
        table = RankTable.compile(SCHEMA, Preference({"A": "a0 < *"}))
        for backend_name in available_backends():
            backend = get_backend(backend_name)
            ctx = backend.prepare(data.canonical_rows, table)
            assert backend.compare_many(ctx, 0, [1]) == [EQUAL]
            assert backend.dominates_mask(ctx, 0, [1]) == [False]
            assert backend.skyline(ctx, [0, 1]) == [0, 1]


@needs_numpy
class TestLargerRandomizedWorkloads:
    """datagen-driven cross-checks at sizes where blocking kicks in."""

    @pytest.mark.parametrize("distribution", ["independent", "anticorrelated"])
    @pytest.mark.parametrize("order", [0, 2, 4])
    def test_synthetic_skylines_agree(self, distribution, order):
        dataset = generate(
            SyntheticConfig(
                num_points=700,
                num_numeric=2,
                num_nominal=2,
                cardinality=4,
                distribution=distribution,
                seed=order + 7,
            )
        )
        prefs = {}
        for name in dataset.schema.nominal_names:
            domain = dataset.schema.spec(name).domain
            prefs[name] = ImplicitPreference(tuple(domain[:order]))
        preference = Preference(prefs)
        expected = skyline(dataset, preference, backend="python").ids
        got = skyline(dataset, preference, backend="numpy").ids
        assert got == expected
        packed = skyline(dataset, preference, backend="bitset").ids
        assert packed == expected

    def test_indexes_agree_across_backends(self):
        from repro.adaptive.adaptive_sfs import AdaptiveSFS
        from repro.algorithms.sfs_d import SFSDirect
        from repro.datagen.generator import frequent_value_template
        from repro.datagen.queries import generate_preferences

        dataset = generate(
            SyntheticConfig(
                num_points=400, num_nominal=2, cardinality=5, seed=3
            )
        )
        template = frequent_value_template(dataset)
        indexes = {
            name: (
                AdaptiveSFS(dataset, template, backend=name),
                SFSDirect(dataset, template, backend=name),
            )
            for name in ("python", "numpy")
        }
        for preference in generate_preferences(
            dataset, 3, 5, template=template, seed=11
        ):
            answers = {
                (name, kind): index.query(preference)
                for name, pair in indexes.items()
                for kind, index in zip(("adaptive", "direct"), pair)
            }
            reference = answers[("python", "direct")]
            for key, answer in answers.items():
                assert answer == reference, key


class TestBackendRegistry:
    """Selection, defaults, env var and failure modes."""

    def teardown_method(self):
        set_default_backend(None)

    def test_python_backend_always_available(self):
        assert "python" in available_backends()
        assert get_backend("python").name == "python"
        assert get_backend("python").vectorized is False

    def test_registered_backends_lists_both(self):
        assert set(registered_backends()) >= {"numpy", "python"}

    def test_unknown_backend_raises(self):
        with pytest.raises(EngineError):
            get_backend("fortran")

    def test_resolve_accepts_instances_and_names(self):
        backend = get_backend("python")
        assert resolve_backend(backend) is backend
        assert resolve_backend("python") is backend

    def test_set_default_backend(self):
        set_default_backend("python")
        assert default_backend_name() == "python"
        assert get_backend().name == "python"
        set_default_backend(None)

    def test_set_default_backend_validates_eagerly(self):
        with pytest.raises(EngineError):
            set_default_backend("no-such-backend")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert default_backend_name() == "python"
        assert get_backend().name == "python"

    def test_auto_default_prefers_numpy_else_python(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        expected = "numpy" if numpy_available() else "python"
        assert default_backend_name() == expected

    def test_auto_falls_back_to_python_without_numpy(self, monkeypatch):
        import repro.engine.base as base

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        monkeypatch.setattr(base, "numpy_available", lambda: False)
        assert base.default_backend_name() == "python"

    def test_skyline_rejects_unknown_backend(self, vacation_data):
        with pytest.raises(EngineError):
            skyline(vacation_data, backend="no-such-backend")


@needs_numpy
class TestColumnarStore:
    """The dataset-cached column-major twin of the canonical rows."""

    def test_columns_match_canonical_rows(self, vacation_data):
        store = vacation_data.columns
        assert len(store) == len(vacation_data)
        for i, row in enumerate(vacation_data.canonical_rows):
            for dim, value in enumerate(row):
                assert store.matrix[i, dim] == float(value)
        # Nominal keys carry the value ids; universal keys are zero.
        assert store.nominal_dims == (2,)
        assert store.keys[:, 0].tolist() == [0] * len(vacation_data)
        assert store.keys[:, 2].tolist() == [
            row[2] for row in vacation_data.canonical_rows
        ]

    def test_store_is_cached_and_readonly(self, vacation_data):
        store = vacation_data.columns
        assert vacation_data.columns is store
        with pytest.raises(ValueError):
            store.matrix[0, 0] = 99.0

    def test_remap_columns_applies_rank_table(self, vacation_data):
        table = RankTable.compile(
            vacation_data.schema, Preference({"Hotel-group": "T < M < *"})
        )
        ranks = table.remap_columns(vacation_data.columns)
        for i, row in enumerate(vacation_data.canonical_rows):
            assert tuple(ranks[i]) == table.rank_vector(row)


class TestDatasetValidation:
    """Eager validation names the offending row index and attribute."""

    def test_bad_nominal_value_names_row_and_attribute(self):
        with pytest.raises(Exception) as excinfo:
            Dataset(SCHEMA, [(1, 1, "a0", "b0"), (1, 1, "nope", "b0")])
        message = str(excinfo.value)
        assert "row 1" in message
        assert "'A'" in message
        assert "nope" in message

    def test_non_numeric_value_names_row_and_attribute(self):
        with pytest.raises(Exception) as excinfo:
            Dataset(SCHEMA, [("oops", 1, "a0", "b0")])
        message = str(excinfo.value)
        assert "row 0" in message
        assert "'x'" in message

    def test_arity_error_names_row_index(self):
        with pytest.raises(Exception) as excinfo:
            Dataset(SCHEMA, [(1, 1, "a0", "b0"), (1, 1)])
        assert "row 1" in str(excinfo.value)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_numerics_rejected(self, bad):
        # NaN compares false both ways, which the reference and the
        # vectorized kernels would resolve differently - so datasets
        # refuse non-finite numerics up front.
        with pytest.raises(Exception) as excinfo:
            Dataset(SCHEMA, [(bad, 1, "a0", "b0")])
        message = str(excinfo.value)
        assert "row 0" in message and "'x'" in message
