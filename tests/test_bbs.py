"""Tests for the BBS skyline algorithm over rank-vector R-trees."""

import pytest

from repro.algorithms.bbs import bbs_skyline
from repro.algorithms.bruteforce import bruteforce_skyline
from repro.core.dataset import Dataset
from repro.core.dominance import RankTable
from repro.core.preferences import Preference
from repro.datagen.generator import SyntheticConfig, generate
from repro.datagen.queries import generate_preferences


class TestPaperExamples:
    @pytest.mark.parametrize(
        "pref, expected",
        [
            (None, {0, 2, 4, 5}),  # Bob
            (Preference({"Hotel-group": "T < M < *"}), {0, 2}),  # Alice
            (Preference({"Hotel-group": "H < T < *"}), {0, 2}),  # Emily
        ],
    )
    def test_table2_customers(self, vacation_data, pref, expected):
        table = RankTable.compile(vacation_data.schema, pref)
        result = bbs_skyline(
            vacation_data.canonical_rows, vacation_data.ids, table
        )
        assert set(result) == expected


class TestEquivalence:
    @pytest.mark.parametrize("order", [0, 1, 3])
    @pytest.mark.parametrize(
        "distribution", ["independent", "correlated", "anticorrelated"]
    )
    def test_matches_bruteforce(self, distribution, order):
        data = generate(
            SyntheticConfig(
                num_points=300,
                num_numeric=3,
                num_nominal=2,
                cardinality=5,
                distribution=distribution,
                seed=9,
            )
        )
        for pref in generate_preferences(data, order, 3, seed=order):
            table = RankTable.compile(data.schema, pref)
            expected = set(
                bruteforce_skyline(data.canonical_rows, data.ids, table)
            )
            got = bbs_skyline(data.canonical_rows, data.ids, table)
            assert set(got) == expected

    def test_empty_input(self, vacation_data):
        table = RankTable.compile(vacation_data.schema)
        assert bbs_skyline(vacation_data.canonical_rows, [], table) == []

    def test_duplicates_survive(self, vacation_schema):
        data = Dataset(vacation_schema, [(1, 5, "T")] * 3)
        table = RankTable.compile(vacation_schema)
        assert sorted(
            bbs_skyline(data.canonical_rows, data.ids, table)
        ) == [0, 1, 2]

    def test_incomparable_rank_ties_not_pruned(self, vacation_schema):
        """Equal-rank distinct nominal values must all survive.

        This is exactly the case the conservative prune exists for: all
        three points share the same rank vector, so a naive BBS over
        rank space would keep only one.
        """
        data = Dataset(
            vacation_schema, [(1, 5, "T"), (1, 5, "H"), (1, 5, "M")]
        )
        table = RankTable.compile(vacation_schema)
        assert sorted(
            bbs_skyline(data.canonical_rows, data.ids, table)
        ) == [0, 1, 2]


class TestProgressiveOrder:
    def test_accepted_points_in_ascending_score_order(self):
        data = generate(
            SyntheticConfig(
                num_points=200, num_numeric=2, num_nominal=2, cardinality=4,
                seed=6,
            )
        )
        pref = Preference({"nom0": ["d0_v1"]})
        table = RankTable.compile(data.schema, pref)
        out = bbs_skyline(data.canonical_rows, data.ids, table)
        scores = [table.score(data.canonical(i)) for i in out]
        assert scores == sorted(scores)
