"""Tests for the STR-bulk-loaded R-tree substrate."""

import random

import pytest

from repro.spatial.rtree import DEFAULT_CAPACITY, RTree, RTreeNode, bulk_load


def random_points(n, dims, seed=0):
    rng = random.Random(seed)
    return [
        (tuple(rng.random() for _ in range(dims)), i) for i in range(n)
    ]


class TestBulkLoad:
    def test_empty(self):
        tree = bulk_load([])
        assert tree.root is None
        assert tree.size == 0
        assert tree.height() == 0
        assert tree.all_payloads() == []

    def test_single_point(self):
        tree = bulk_load([((1.0, 2.0), "a")])
        assert tree.height() == 1
        assert tree.root.is_leaf
        assert tree.all_payloads() == ["a"]

    @pytest.mark.parametrize("n", [5, 16, 17, 100, 500])
    def test_all_payloads_present(self, n):
        tree = bulk_load(random_points(n, 3))
        assert sorted(tree.all_payloads()) == list(range(n))

    def test_capacity_respected(self):
        tree = bulk_load(random_points(200, 2), capacity=8)

        def check(node):
            if node.is_leaf:
                assert 1 <= len(node.entries) <= 8
            else:
                assert 1 <= len(node.children) <= 8
                for child in node.children:
                    check(child)

        check(tree.root)

    def test_height_is_logarithmic(self):
        tree = bulk_load(random_points(1000, 2), capacity=10)
        # 1000 points at fanout 10: 3 levels of pages.
        assert tree.height() <= 4

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            bulk_load(random_points(5, 2), capacity=1)


class TestMbrs:
    def test_mbrs_contain_descendants(self):
        tree = bulk_load(random_points(300, 3, seed=2), capacity=8)

        def check(node):
            if node.is_leaf:
                for point, _payload in node.entries:
                    assert all(
                        lo <= x <= hi
                        for lo, x, hi in zip(node.mbr_min, point, node.mbr_max)
                    )
            else:
                for child in node.children:
                    assert all(
                        plo <= clo and chi <= phi
                        for plo, clo, chi, phi in zip(
                            node.mbr_min, child.mbr_min,
                            child.mbr_max, node.mbr_max,
                        )
                    )
                    check(child)

        check(tree.root)

    def test_min_score_is_lower_bound(self):
        tree = bulk_load(random_points(200, 3, seed=3))

        def check(node):
            if node.is_leaf:
                for point, _payload in node.entries:
                    assert node.min_score() <= sum(point) + 1e-12
            else:
                for child in node.children:
                    assert node.min_score() <= child.min_score() + 1e-12
                    check(child)

        check(tree.root)

    def test_empty_node_rejected(self):
        with pytest.raises(ValueError):
            RTreeNode(True, entries=[])
