"""Zero-copy columnar backing store: v2 snapshots, borrowed datasets.

Four concerns, one file:

1. **Format v2 round trips** - the column-major ``.npy`` sidecar plus
   compact liveness reads back identically through every tier (mmap'd
   borrow, eager decode, inline JSON), including the hypothesis suite
   over nasty payloads (nominal domains wider than a byte, negative
   and denormal floats, single-row and zero-live-row states) and the
   v1 compat shim (old documents load, the next write re-stamps v2).
2. **Ownership and lifetime** - a borrowed mmap survives derived
   ``Dataset`` views, ``compact()`` is the one materialization point,
   ``close()`` releases the only file descriptor and is idempotent,
   and restoring a borrowed base never re-encodes (poisoned encoder).
3. **Crash ordering** - an injected fault between the sidecar fsync
   and its publication must leave the previous snapshot generation
   fully intact (the referencing document is never written).
4. **Process-pool file shipping** - a context whose values borrow an
   F-order sidecar ships the *path* to workers instead of copying the
   value matrix into shared memory, and still answers identically.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import faults
from repro.core.attributes import Schema, nominal, numeric_max, numeric_min
from repro.core.colstore import ChainRows, growable_rows
from repro.core.dataset import Dataset
from repro.engine.columnar import numpy_available
from repro.exceptions import DatasetError, StorageError
from repro.faults import FaultPlan, FaultRule
from repro.ipo.serialize import schema_fingerprint
from repro.serve.service import SkylineService
from repro.storage import DurableStore, dataset_state, restore_dataset
from repro.storage.snapshot import (
    MMAP_ENV,
    read_snapshot,
    read_snapshot_header,
    resolve_mmap_mode,
    write_snapshot,
)
from repro.updates.dataset import DynamicDataset

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

_FDS = "/proc/self/fd"
needs_procfs = pytest.mark.skipif(
    not os.path.isdir(_FDS), reason="needs /proc/self/fd"
)


def _open_fds():
    return set(os.listdir(_FDS))


SCHEMA = Schema(
    [numeric_min("price"), numeric_min("dist"), nominal("g", ["T", "H", "M"])]
)

ROWS = [(10, 5, "T"), (8, 7, "H"), (12, 4, "M"), (9, 9, "T"), (7, 8, "M")]


def small_dynamic() -> DynamicDataset:
    data = DynamicDataset.from_dataset(Dataset(SCHEMA, ROWS))
    data.delete([1])
    return data


def sidecar_snapshot(tmp_path, monkeypatch, data, name="snapshot-1.json"):
    """Write ``data`` with the sidecar threshold forced below its size."""
    import repro.storage.snapshot as snapshot_module

    monkeypatch.setattr(snapshot_module, "BINARY_PAYLOAD_THRESHOLD", 1)
    path = write_snapshot(tmp_path / name, {"data": dataset_state(data)})
    assert path.with_suffix(".npy").exists()
    return path


# ---------------------------------------------------------------------------
# format v2 round trips
# ---------------------------------------------------------------------------


@needs_numpy
class TestV2RoundTrip:
    def test_mmap_read_restores_borrowed_store(self, tmp_path, monkeypatch):
        from repro.core.colstore import BorrowedColumnStore

        data = small_dynamic()
        path = sidecar_snapshot(tmp_path, monkeypatch, data)
        document = read_snapshot(path, mmap=True)
        assert isinstance(document["data"]["canonical"], BorrowedColumnStore)
        restored = restore_dataset(document["data"])
        assert restored.base_store is document["data"]["canonical"]
        assert list(restored.canonical_rows) == list(data.canonical_rows)
        assert [restored.row(i) for i in restored.ids] == [
            data.row(i) for i in data.ids
        ]
        assert restored.version == data.version
        restored.base_store.close()

    def test_off_and_mmap_tiers_agree(self, tmp_path, monkeypatch):
        data = small_dynamic()
        path = sidecar_snapshot(tmp_path, monkeypatch, data)
        from repro.core.colstore import BorrowedColumnStore

        eager = restore_dataset(read_snapshot(path, mmap=False)["data"])
        mapped = restore_dataset(read_snapshot(path, mmap=True)["data"])
        # The eager tier owns its rows outright - no borrowed handle.
        assert not isinstance(eager.base_store, BorrowedColumnStore)
        assert list(eager.canonical_rows) == list(mapped.canonical_rows)
        assert [eager.row(i) for i in eager.ids] == [
            mapped.row(i) for i in mapped.ids
        ]
        mapped.base_store.close()

    def test_header_read_skips_the_payload(self, tmp_path, monkeypatch):
        data = small_dynamic()
        path = sidecar_snapshot(tmp_path, monkeypatch, data)
        before = _open_fds() if os.path.isdir(_FDS) else None
        header = read_snapshot_header(path)
        if before is not None:
            assert not (_open_fds() - before)  # the sidecar stayed closed
        assert header["format_version"] == 2
        assert header["data"]["slots"] == data.num_slots
        assert header["data"]["dead"] == 1
        assert header["data"]["data_version"] == data.version
        assert "canonical" not in header["data"]

    def test_v1_document_loads_and_is_rewritten_as_v2(self, tmp_path):
        data = small_dynamic()
        canonical = [list(row) for row in data.canonical_rows]
        v1 = {
            "kind": "repro-durable-snapshot",
            "format_version": 1,
            "data": {
                "schema": schema_fingerprint(SCHEMA),
                "canonical": canonical,
                "alive": list(data.alive_flags),
                "data_version": data.version,
                "compactions": 0,
            },
        }
        path = tmp_path / "snapshot-1.json"
        path.write_text(json.dumps(v1))
        restored = restore_dataset(read_snapshot(path)["data"])
        assert list(restored.canonical_rows) == list(data.canonical_rows)
        assert sorted(restored.ids) == sorted(data.ids)
        header = read_snapshot_header(path)
        assert header["data"]["slots"] == data.num_slots
        assert header["data"]["dead"] == 1
        # The next checkpoint writes the modern layout.
        rewritten = write_snapshot(
            tmp_path / "snapshot-2.json", {"data": dataset_state(restored)}
        )
        fresh = json.loads(rewritten.read_text())
        assert fresh["format_version"] == 2
        assert fresh["data"]["slots"] == data.num_slots
        assert "alive" not in fresh["data"]

    def test_zero_live_rows_round_trip(self, tmp_path, monkeypatch):
        data = DynamicDataset.from_dataset(Dataset(SCHEMA, ROWS[:2]))
        data.delete([0, 1])
        path = sidecar_snapshot(tmp_path, monkeypatch, data)
        restored = restore_dataset(read_snapshot(path, mmap=True)["data"])
        assert list(restored.ids) == []
        assert restored.num_slots == 2
        assert list(restored.canonical_rows) == list(data.canonical_rows)
        restored.base_store.close()

    def test_single_row_round_trip(self, tmp_path, monkeypatch):
        data = DynamicDataset.from_dataset(Dataset(SCHEMA, ROWS[:1]))
        path = sidecar_snapshot(tmp_path, monkeypatch, data)
        restored = restore_dataset(read_snapshot(path, mmap=True)["data"])
        assert restored.row(0) == data.row(0)
        restored.base_store.close()


WIDE_DOMAIN = tuple(f"v{i}" for i in range(300))  # value ids beyond a byte

HYPO_SCHEMA = Schema(
    [numeric_min("lo"), numeric_max("hi"), nominal("w", WIDE_DOMAIN)]
)

# Negative, huge, tiny and *denormal* floats all have to survive the
# float64 sidecar and the inline JSON path bit-exactly (NaN excluded:
# it breaks equality, and datasets never produce it).
nasty_float = st.one_of(
    st.sampled_from([0.0, -1.5, 5e-324, -5e-324, 1e300, -1e300, 2.5e-308]),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)

hypo_rows = st.lists(
    st.tuples(
        nasty_float, nasty_float, st.sampled_from(WIDE_DOMAIN)
    ),
    min_size=1,
    max_size=12,
)


@needs_numpy
class TestV2PropertyRoundTrip:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(rows=hypo_rows, dead=st.data(), mmap=st.booleans())
    def test_any_state_round_trips(self, tmp_path, rows, dead, mmap):
        data = DynamicDataset.from_dataset(Dataset(HYPO_SCHEMA, rows))
        victims = dead.draw(
            st.lists(
                st.integers(0, len(rows) - 1), unique=True, max_size=len(rows)
            )
        )
        if victims:
            data.delete(victims)
        import repro.storage.snapshot as snapshot_module

        original = snapshot_module.BINARY_PAYLOAD_THRESHOLD
        snapshot_module.BINARY_PAYLOAD_THRESHOLD = 1
        try:
            path = write_snapshot(
                tmp_path / "snap.json", {"data": dataset_state(data)}
            )
            restored = restore_dataset(
                read_snapshot(path, mmap=mmap)["data"]
            )
        finally:
            snapshot_module.BINARY_PAYLOAD_THRESHOLD = original
        try:
            assert list(restored.canonical_rows) == list(data.canonical_rows)
            assert list(restored.alive_flags) == list(data.alive_flags)
            assert [restored.row(i) for i in restored.ids] == [
                data.row(i) for i in data.ids
            ]
        finally:
            if restored.base_store is not None:
                restored.base_store.close()


# ---------------------------------------------------------------------------
# ownership and lifetime
# ---------------------------------------------------------------------------


@needs_numpy
class TestBorrowedLifetime:
    def restored(self, tmp_path, monkeypatch):
        data = small_dynamic()
        path = sidecar_snapshot(tmp_path, monkeypatch, data)
        dyn = restore_dataset(read_snapshot(path, mmap=True)["data"])
        return data, dyn, dyn.base_store

    def test_mapping_survives_derived_views(self, tmp_path, monkeypatch):
        data, dyn, store = self.restored(tmp_path, monkeypatch)
        base = dyn.base_dataset()
        assert base.store is store  # the view borrows, it does not copy
        sub = base.subset([0, 2])
        ext = base.extended([(1, 1, "H")])
        assert [sub.row(0), sub.row(1)] == [data.row(0), data.row(2)]
        assert len(ext) == len(base) + 1
        assert ext.row(len(base)) == (1, 1, "H")
        assert ext.row(0) == base.row(0)
        store.close()

    def test_close_is_idempotent_and_releases_the_fd(
        self, tmp_path, monkeypatch
    ):
        if not os.path.isdir(_FDS):
            pytest.skip("needs /proc/self/fd")
        data = small_dynamic()
        path = sidecar_snapshot(tmp_path, monkeypatch, data)
        before = _open_fds()
        dyn = restore_dataset(read_snapshot(path, mmap=True)["data"])
        store = dyn.base_store
        assert _open_fds() - before  # the mapping really holds an fd
        store.close()
        assert not (_open_fds() - before)
        store.close()  # double-close must be a no-op
        assert store.closed
        assert not (_open_fds() - before)

    def test_compact_is_the_one_materialization_point(
        self, tmp_path, monkeypatch
    ):
        data, dyn, store = self.restored(tmp_path, monkeypatch)
        expected = [dyn.row(i) for i in dyn.ids]
        dyn.compact()
        assert dyn.base_store is None  # base reference dropped
        store.close()  # the owner retires the mapping ...
        # ... and every row survives, because compaction copied them out.
        assert [dyn.row(i) for i in dyn.ids] == expected

    def test_borrowed_base_is_never_re_encoded(self, tmp_path, monkeypatch):
        data = small_dynamic()
        path = sidecar_snapshot(tmp_path, monkeypatch, data)
        document = read_snapshot(path, mmap=True)

        import repro.core.dataset as core_dataset
        import repro.updates.dataset as dataset_module

        def poisoned(*args, **kwargs):
            raise AssertionError("a borrowed base must never be re-encoded")

        monkeypatch.setattr(dataset_module, "_encode_rows", poisoned)
        monkeypatch.setattr(core_dataset, "_encode_rows", poisoned)
        restored = restore_dataset(document["data"])
        base = restored.base_dataset()
        assert list(restored.canonical_rows) == list(data.canonical_rows)
        assert base.columns.matrix is restored.base_store.matrix
        restored.base_store.close()

    def test_chain_rows_refuse_nesting(self):
        chain = ChainRows([(1, 2)], [(3, 4)])
        with pytest.raises(DatasetError, match="chain over"):
            ChainRows(chain)
        grown = growable_rows(chain)
        assert grown is not chain  # shared base, private tail
        assert grown.base is chain.base
        chain.append((5, 6))
        assert list(grown) == [(1, 2), (3, 4)]

    @needs_procfs
    def test_service_close_releases_the_mapping(self, tmp_path, monkeypatch):
        import repro.storage.snapshot as snapshot_module

        from repro.datagen import SyntheticConfig, generate

        monkeypatch.setattr(snapshot_module, "BINARY_PAYLOAD_THRESHOLD", 8)
        dataset = generate(
            SyntheticConfig(
                num_points=64, num_numeric=2, num_nominal=1,
                cardinality=4, seed=5,
            )
        )
        with SkylineService(
            dataset, storage_dir=tmp_path / "state"
        ) as service:
            service.insert_rows([dataset.row(0)])
            expected = service.query(None, use_cache=False).ids
        assert list((tmp_path / "state").glob("snapshot-*.npy"))
        before = _open_fds()
        recovered = SkylineService.recover(tmp_path / "state", mmap="require")
        assert recovered._dynamic.base_store is not None
        assert recovered.query(None, use_cache=False).ids == expected
        recovered.close()
        recovered.close()  # double-close stays a no-op
        assert not (_open_fds() - before)


# ---------------------------------------------------------------------------
# crash ordering: the sidecar fault site
# ---------------------------------------------------------------------------


@needs_numpy
class TestSidecarFault:
    def test_fault_between_sidecar_and_document_keeps_old_generation(
        self, tmp_path, monkeypatch
    ):
        import repro.storage.snapshot as snapshot_module

        monkeypatch.setattr(snapshot_module, "BINARY_PAYLOAD_THRESHOLD", 1)
        store = DurableStore(tmp_path)
        data = small_dynamic()
        store.checkpoint({"data": dataset_state(data)}, data.version)
        survivors = sorted(p.name for p in tmp_path.iterdir())

        data.append([(1, 1, "T")])
        plan = FaultPlan(rules=[
            FaultRule(site="snapshot.sidecar", kind="error", at=(1,)),
        ])
        with faults.use(plan):
            with pytest.raises(StorageError, match="could not write"):
                store.checkpoint(
                    {"data": dataset_state(data)}, data.version
                )
        assert plan.injected() == {"snapshot.sidecar:error": 1}
        # Neither the new document nor a published new sidecar exists;
        # the previous generation is byte-for-byte present.
        version = data.version
        assert not (tmp_path / f"snapshot-{version}.json").exists()
        assert not (tmp_path / f"snapshot-{version}.npy").exists()
        assert set(survivors) <= {p.name for p in tmp_path.iterdir()}

        recovered = DurableStore(tmp_path).recover(mmap="require")
        restored = restore_dataset(recovered.snapshot["data"])
        assert restored.version == recovered.snapshot_version
        assert len(restored.ids) == len(ROWS) - 1  # pre-fault generation
        if restored.base_store is not None:
            restored.base_store.close()


# ---------------------------------------------------------------------------
# the REPRO_MMAP switch
# ---------------------------------------------------------------------------


class TestMmapMode:
    def test_argument_resolution(self):
        assert resolve_mmap_mode(True) == "require"
        assert resolve_mmap_mode(False) == "off"
        assert resolve_mmap_mode("REQUIRE ") == "require"
        with pytest.raises(StorageError, match="invalid mmap mode"):
            resolve_mmap_mode("sometimes")

    def test_environment_default(self, monkeypatch):
        monkeypatch.delenv(MMAP_ENV, raising=False)
        assert resolve_mmap_mode() == "auto"
        monkeypatch.setenv(MMAP_ENV, "off")
        assert resolve_mmap_mode() == "off"
        monkeypatch.setenv(MMAP_ENV, "nope")
        with pytest.raises(StorageError, match="invalid mmap mode"):
            resolve_mmap_mode()

    @needs_numpy
    def test_require_fails_without_numpy(self, tmp_path, monkeypatch):
        data = small_dynamic()
        path = sidecar_snapshot(tmp_path, monkeypatch, data)
        import repro.storage.snapshot as snapshot_module

        monkeypatch.setattr(
            snapshot_module, "numpy_available", lambda: False
        )
        with pytest.raises(StorageError, match="NumPy is unavailable"):
            read_snapshot(path, mmap="require")

    def test_require_passes_inline_payloads(self, tmp_path):
        data = small_dynamic()
        path = write_snapshot(
            tmp_path / "snapshot-1.json", {"data": dataset_state(data)}
        )
        document = read_snapshot(path, mmap="require")
        restored = restore_dataset(document["data"])
        assert list(restored.canonical_rows) == list(data.canonical_rows)

    @needs_numpy
    def test_auto_falls_back_when_the_sidecar_cannot_map(
        self, tmp_path, monkeypatch
    ):
        data = small_dynamic()
        path = sidecar_snapshot(tmp_path, monkeypatch, data)

        import repro.storage.snapshot as snapshot_module

        def refuse(*args, **kwargs):
            raise StorageError("pretend the filesystem refuses mmap")

        monkeypatch.setattr(
            snapshot_module, "BorrowedColumnStore", refuse
        )
        with pytest.raises(StorageError, match="refuses mmap"):
            read_snapshot(path, mmap="require")
        from repro.core.colstore import JsonColumnStore

        restored = restore_dataset(read_snapshot(path, mmap="auto")["data"])
        # Fell back to the eager tier: owned rows, nothing borrowed.
        assert isinstance(restored.base_store, JsonColumnStore)
        assert list(restored.canonical_rows) == list(data.canonical_rows)


# ---------------------------------------------------------------------------
# process-pool file shipping
# ---------------------------------------------------------------------------


@needs_numpy
class TestFileShippedValues:
    def borrowed_dataset(self, tmp_path, monkeypatch, points=600):
        from repro.datagen import SyntheticConfig, generate

        base = generate(
            SyntheticConfig(
                num_points=points, num_numeric=2, num_nominal=2,
                cardinality=4, distribution="anticorrelated", seed=23,
            )
        )
        data = DynamicDataset.from_dataset(base)
        path = sidecar_snapshot(tmp_path, monkeypatch, data)
        dyn = restore_dataset(read_snapshot(path, mmap=True)["data"])
        return base, dyn.base_dataset(), dyn.base_store, path

    def test_columnar_view_advertises_its_file(self, tmp_path, monkeypatch):
        base, borrowed, store, path = self.borrowed_dataset(
            tmp_path, monkeypatch
        )
        columns = borrowed.columns
        assert columns.source_path == store.source_path
        assert str(columns.source_path) == str(path.with_suffix(".npy"))
        assert columns.matrix is store.matrix  # the mmap IS the matrix
        store.close()

    def test_shared_context_ships_the_path_not_the_values(
        self, tmp_path, monkeypatch
    ):
        from repro.core.dominance import RankTable
        from repro.engine import get_backend
        from repro.engine.parallel import _SharedContext

        base, borrowed, store, path = self.borrowed_dataset(
            tmp_path, monkeypatch
        )
        table = RankTable.compile(borrowed.schema, None)
        numpy_backend = get_backend("numpy")
        ctx = numpy_backend.prepare(
            borrowed.canonical_rows, table, store=borrowed.columns
        )
        assert ctx.source == store.source_path
        with _SharedContext(ctx) as shared:
            assert shared.values_file == str(store.source_path)
            assert len(shared.names) == 2  # ranks + scores only
        # An owned context still ships all three blocks.
        owned = numpy_backend.prepare(list(base.canonical_rows), table)
        assert owned.source is None
        with _SharedContext(owned) as shared:
            assert shared.values_file is None
            assert len(shared.names) == 3
        store.close()

    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="no fork start method on this platform",
    )
    def test_process_pool_answers_match_over_the_mapped_file(
        self, tmp_path, monkeypatch
    ):
        from repro.core.skyline import skyline
        from repro.engine import make_parallel_backend

        base, borrowed, store, path = self.borrowed_dataset(
            tmp_path, monkeypatch
        )
        expected = skyline(base, None, backend="python").ids
        backend = make_parallel_backend(
            "numpy", workers=2, partitions=2, mode="process", min_rows=0
        )
        assert skyline(borrowed, None, backend=backend).ids == expected
        store.close()
