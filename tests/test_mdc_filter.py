"""Tests for the standalone MDC-filter evaluator."""

import pytest

from repro.core.preferences import Preference
from repro.core.skyline import skyline
from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
)
from repro.datagen.queries import generate_preferences
from repro.exceptions import RefinementError
from repro.mdc.filter import MDCFilter


@pytest.fixture(scope="module")
def workload():
    return generate(
        SyntheticConfig(
            num_points=180, num_numeric=2, num_nominal=2, cardinality=5,
            seed=61,
        )
    )


class TestCorrectness:
    @pytest.mark.parametrize("order", [0, 1, 2, 3, 5])
    def test_matches_bruteforce(self, workload, order):
        index = MDCFilter(workload)
        for pref in generate_preferences(workload, order, 6, seed=order):
            expected = sorted(
                skyline(workload, pref, algorithm="bruteforce").ids
            )
            assert index.query(pref) == expected

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_matches_bruteforce_with_template(self, workload, order):
        template = frequent_value_template(workload)
        index = MDCFilter(workload, template)
        for pref in generate_preferences(
            workload, order, 6, template=template, seed=order + 7
        ):
            expected = sorted(
                skyline(
                    workload, pref, template=template, algorithm="bruteforce"
                ).ids
            )
            assert index.query(pref) == expected

    def test_agrees_with_ipo_tree_and_adaptive(self, workload):
        from repro.adaptive.adaptive_sfs import AdaptiveSFS
        from repro.ipo.tree import IPOTree

        mdc_filter = MDCFilter(workload)
        tree = IPOTree.build(workload)
        adaptive = AdaptiveSFS(workload)
        for pref in generate_preferences(workload, 3, 8, seed=12):
            assert (
                mdc_filter.query(pref)
                == tree.query(pref)
                == adaptive.query(pref)
            )

    def test_any_value_supported(self, workload):
        """Unlike IPO Tree-k, the filter handles unpopular values."""
        index = MDCFilter(workload)
        rare = workload.most_frequent("nom0", 5)[-1]
        pref = Preference({"nom0": [rare]})
        assert index.query(pref) == sorted(skyline(workload, pref).ids)

    def test_template_violation_rejected(self, workload):
        template = frequent_value_template(workload)
        index = MDCFilter(workload, template)
        wrong = workload.most_frequent("nom0", 2)[1]
        with pytest.raises(RefinementError):
            index.query(Preference({"nom0": [wrong]}))


class TestFootprint:
    def test_storage_model(self, workload):
        index = MDCFilter(workload)
        requirements = sum(
            len(cond.winners)
            for conditions in index._mdcs.values()
            for cond in conditions
        )
        assert index.storage_bytes() == 4 * len(index.skyline_ids) + 8 * requirements

    def test_condition_count(self, workload):
        index = MDCFilter(workload)
        assert index.condition_count() == sum(
            len(v) for v in index._mdcs.values()
        )

    def test_preprocessing_recorded(self, workload):
        assert MDCFilter(workload).preprocessing_seconds > 0

    def test_cheaper_than_ipo_tree(self, workload):
        """MDC-filter preprocessing avoids the O(c^m') enumeration."""
        from repro.ipo.tree import IPOTree

        index = MDCFilter(workload)
        tree = IPOTree.build(workload)
        assert index.storage_bytes() < tree.storage_bytes()
