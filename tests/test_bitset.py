"""The bitset backend: packed tiers, compiled kernel gate, edge shapes.

The differential oracle (``tests/test_oracle.py``) already audits the
bitset backend - both tiers - against brute force on every algorithm;
this file covers what the oracle's randomized cases cannot pin down
deterministically: word-boundary sizes (the packed bitmaps work in
64-point words, so off-by-ones hide at n = 63/64/65), degenerate
windows, single-dimension schemas, the ``REPRO_BITSET_KERNEL``
environment gate, the packing invariants the sweep's soundness rests
on, and the registry's availability reporting.
"""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema, nominal, numeric_min
from repro.core.dataset import Dataset
from repro.core.dominance import RankTable
from repro.core.preferences import ImplicitPreference, Preference
from repro.datagen.generator import SyntheticConfig, generate
from repro.engine import (
    BackendStatus,
    backend_status,
    get_backend,
    make_bitset_backend,
    numpy_available,
)
from repro.engine._bitset_kernel import (
    KERNEL_ENV_VAR,
    load_kernel,
    reset_probe,
)
from repro.exceptions import EngineError

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

#: Word-boundary sizes: below/at/above one and two uint64 words.
BOUNDARY_SIZES = (1, 2, 63, 64, 65, 127, 128, 129, 200)


def _variants():
    """Every packed/kernel tier constructible in this environment."""
    variants = [("python-int", make_bitset_backend(packed="python"))]
    if numpy_available():
        variants.append(("numpy", make_bitset_backend(packed="numpy")))
        if get_backend("bitset").compiled:
            variants.append(
                ("numpy-nokern", make_bitset_backend(kernel="off"))
            )
    return variants


def _workload(num_points, seed=0, num_numeric=2, num_nominal=2):
    dataset = generate(
        SyntheticConfig(
            num_points=num_points,
            num_numeric=num_numeric,
            num_nominal=num_nominal,
            cardinality=4,
            distribution="anticorrelated",
            seed=seed,
        )
    )
    prefs = {
        name: ImplicitPreference(dataset.schema.spec(name).domain[:2])
        for name in dataset.schema.nominal_names
    }
    table = RankTable.compile(dataset.schema, Preference(prefs))
    return dataset, table


def _contexts(backend, dataset, table):
    store = dataset.columns if backend.vectorized else None
    return backend.prepare(dataset.canonical_rows, table, store=store)


class TestWordBoundarySizes:
    """The packed window is word-granular; sizes around 64 multiples
    are where a wrong head mask or an unguarded tail bit shows up."""

    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_skyline_matches_reference_at_boundaries(self, n):
        dataset, table = _workload(n, seed=n)
        reference = get_backend("python")
        ref_ctx = reference.prepare(dataset.canonical_rows, table)
        expected = set(reference.skyline(ref_ctx, list(dataset.ids)))
        for label, backend in _variants():
            ctx = _contexts(backend, dataset, table)
            got = set(backend.skyline(ctx, list(dataset.ids)))
            assert got == expected, (label, n)

    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_membership_sweep_matches_reference_at_boundaries(self, n):
        dataset, table = _workload(n, seed=1000 + n)
        ids = list(dataset.ids)
        half = ids[: max(1, n // 2)]
        reference = get_backend("python")
        ref_ctx = reference.prepare(dataset.canonical_rows, table)
        expected = reference.dominated_any(ref_ctx, ids, half)
        for label, backend in _variants():
            ctx = _contexts(backend, dataset, table)
            assert backend.dominated_any(ctx, ids, half) == expected, (
                label, n,
            )


class TestDegenerateWindows:
    def test_empty_targets_and_empty_against(self):
        dataset, table = _workload(40)
        for label, backend in _variants():
            ctx = _contexts(backend, dataset, table)
            assert backend.dominated_any(ctx, [], [0, 1]) == [], label
            ids = list(dataset.ids)
            assert backend.dominated_any(ctx, ids, []) == (
                [False] * len(ids)
            ), label
            assert backend.skyline(ctx, []) == [], label

    def test_all_dominated_window(self):
        # One row strictly better everywhere: every other point dies,
        # whole words of the packed window are tombstones.
        schema = Schema([numeric_min("x"), numeric_min("y")])
        rows = [(0, 0)] + [(i + 1, i + 2) for i in range(130)]
        dataset = Dataset(schema, rows)
        table = RankTable.compile(schema, None)
        for label, backend in _variants():
            ctx = _contexts(backend, dataset, table)
            assert backend.skyline(ctx, list(dataset.ids)) == [0], label
            dead = backend.dominated_any(
                ctx, list(range(1, len(rows))), [0]
            )
            assert dead == [True] * (len(rows) - 1), label

    def test_all_identical_rows_survive(self):
        # Identical rows never dominate each other (Definition 3's
        # strictness clause), even though every bucket AND flags them.
        schema = Schema([numeric_min("x"), nominal("A", ("a", "b"))])
        rows = [(1, "a")] * 70
        dataset = Dataset(schema, rows)
        table = RankTable.compile(schema, Preference({"A": "a < *"}))
        for label, backend in _variants():
            ctx = _contexts(backend, dataset, table)
            got = backend.skyline(ctx, list(dataset.ids))
            assert sorted(got) == list(range(70)), label
            assert backend.dominated_any(
                ctx, list(dataset.ids), list(dataset.ids)
            ) == [False] * 70, label


class TestSingleDimension:
    @pytest.mark.parametrize("n", (1, 65, 130))
    def test_single_numeric_dimension(self, n):
        schema = Schema([numeric_min("x")])
        rows = [((i * 37) % n,) for i in range(n)]
        dataset = Dataset(schema, rows)
        table = RankTable.compile(schema, None)
        minimum = min(r[0] for r in rows)
        expected = {i for i, r in enumerate(rows) if r[0] == minimum}
        for label, backend in _variants():
            ctx = _contexts(backend, dataset, table)
            got = set(backend.skyline(ctx, list(dataset.ids)))
            assert got == expected, (label, n)

    def test_single_nominal_dimension_unlisted_values_incomparable(self):
        schema = Schema([nominal("A", ("a", "b", "c", "d"))])
        rows = [("a",), ("b",), ("c",), ("d",)] * 20
        dataset = Dataset(schema, rows)
        table = RankTable.compile(schema, Preference({"A": "a < *"}))
        # 'a' beats every unlisted value, but duplicates of 'a' tie;
        # distinct unlisted values are mutually incomparable - the
        # reference backend owns the exact answer.
        reference = get_backend("python")
        ref_ctx = reference.prepare(dataset.canonical_rows, table)
        expected = set(reference.skyline(ref_ctx, list(dataset.ids)))
        for label, backend in _variants():
            ctx = _contexts(backend, dataset, table)
            got = set(backend.skyline(ctx, list(dataset.ids)))
            assert got == expected, label


@needs_numpy
class TestPackingInvariants:
    """The lemmas the sweep's soundness rests on, checked on real data."""

    def test_buckets_monotone_in_ranks(self):
        import numpy as np

        dataset, table = _workload(500, seed=9)
        backend = make_bitset_backend(packed="numpy")
        ctx = _contexts(backend, dataset, table)
        for j in range(ctx.ranks_t.shape[0]):
            order = np.argsort(ctx.ranks_t[j], kind="stable")
            buckets = ctx.buckets_t[j, order]
            # rank_a <= rank_b implies bucket_a <= bucket_b - the
            # superset property of the bucket AND.
            assert (np.diff(buckets.astype(np.int64)) >= 0).all()
            # Equal ranks land in the same bucket (value equality on a
            # nominal dimension forces a rank tie, so this is what
            # makes the AND a dominator *superset*).
            ranks = ctx.ranks_t[j, order]
            same = ranks[1:] == ranks[:-1]
            assert (buckets[1:][same] == buckets[:-1][same]).all()

    def test_threshold_bitmap_is_cumulative(self):
        import numpy as np

        dataset, table = _workload(200, seed=4)
        backend = make_bitset_backend(packed="numpy")
        ctx = _contexts(backend, dataset, table)
        from repro.engine.bitset_backend import _AcceptState

        state = _AcceptState(np, ctx.ranks_t.shape[0])
        ids = np.arange(len(dataset), dtype=np.int64)
        state.extend(
            np.ascontiguousarray(ctx.ranks_t[:, ids]),
            np.ascontiguousarray(ctx.values_t[:, ids]),
            np.ascontiguousarray(ctx.scores[ids]),
            np.ascontiguousarray(ctx.buckets_t[:, ids]),
        )
        # Level k's bitmap must contain level k-1's (threshold
        # semantics: bit t at level k iff bucket_j(t) <= k) ...
        for j in range(state.num_dims):
            for k in range(1, state.tb.shape[1]):
                below = state.tb[j, k - 1]
                assert ((below & state.tb[j, k]) == below).all()
            # ... and level k must hold exactly the accepts bucketed
            # at or below k.
            for t in range(state.count):
                k = state.buckets[j, t]
                word, bit = t >> 6, np.uint64(1 << (t & 63))
                assert state.tb[j, k, word] & bit
                if k > 0:
                    assert not state.tb[j, k - 1, word] & bit


@needs_numpy
class TestKernelGate:
    """The REPRO_BITSET_KERNEL environment contract."""

    def teardown_method(self):
        reset_probe()

    def test_off_disables_the_compiled_sweep(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "off")
        reset_probe()
        sweep, reason = load_kernel()
        assert sweep is None
        assert "off" in reason
        backend = make_bitset_backend()
        assert not backend.compiled
        assert "uint64" in backend.availability_detail()

    def test_invalid_mode_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "fastest")
        with pytest.raises(EngineError, match="REPRO_BITSET_KERNEL"):
            load_kernel()

    def test_require_raises_when_unbuildable(self, monkeypatch, tmp_path):
        monkeypatch.setenv(KERNEL_ENV_VAR, "require")
        # An unwritable/poisoned cache directory plus a compiler PATH
        # without any cc makes the probe fail deterministically.
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path / "cache"))
        monkeypatch.setenv("PATH", str(tmp_path))
        reset_probe()
        with pytest.raises(EngineError, match="require"):
            load_kernel()

    def test_require_succeeds_when_buildable(self, monkeypatch):
        if not get_backend("bitset").compiled:
            pytest.skip("no C toolchain on this host")
        monkeypatch.setenv(KERNEL_ENV_VAR, "require")
        reset_probe()
        sweep, reason = load_kernel()
        assert sweep is not None
        assert "compiled" in reason

    def test_kernel_and_fallback_agree(self):
        if not get_backend("bitset").compiled:
            pytest.skip("no C toolchain on this host")
        dataset, table = _workload(1500, seed=21, num_nominal=3)
        with_kernel = make_bitset_backend()
        without = make_bitset_backend(kernel="off")
        ctx_on = _contexts(with_kernel, dataset, table)
        ctx_off = _contexts(without, dataset, table)
        ids = list(dataset.ids)
        assert with_kernel.skyline(ctx_on, ids) == without.skyline(
            ctx_off, ids
        )
        assert with_kernel.dominated_any(
            ctx_on, ids, ids[:700]
        ) == without.dominated_any(ctx_off, ids, ids[:700])


@needs_numpy
class TestParallelComposition:
    """ParallelBackend(inner="bitset"): packed kernels under the pool."""

    @pytest.mark.parametrize("mode", ("serial", "thread", "process"))
    def test_partitioned_bitset_matches_plain_skyline(self, mode):
        from repro.engine import make_parallel_backend
        from repro.engine.parallel import fork_available

        if mode == "process" and not fork_available():
            pytest.skip("no fork on this platform")
        dataset, table = _workload(4000, seed=13, num_nominal=3)
        plain = get_backend("bitset")
        expected = set(
            plain.skyline(_contexts(plain, dataset, table), list(dataset.ids))
        )
        parallel = make_parallel_backend(
            "bitset", workers=2, partitions=3, mode=mode, min_rows=0
        )
        ctx = parallel.prepare(
            dataset.canonical_rows, table, store=dataset.columns
        )
        got = set(parallel.skyline(ctx, list(dataset.ids)))
        assert got == expected

    def test_shared_context_ships_packed_buckets(self):
        from repro.engine import make_parallel_backend
        from repro.engine.parallel import _SharedContext

        dataset, table = _workload(600, seed=17)
        parallel = make_parallel_backend("bitset", workers=2)
        ctx = parallel.prepare(
            dataset.canonical_rows, table, store=dataset.columns
        )
        with _SharedContext(ctx.inner, parallel.inner) as shared:
            assert shared.backend_spec[0] == "bitset"
            assert len(shared.names) == 4
        # A plain numpy inner backend ships only the three float blocks.
        plain = make_parallel_backend("numpy", workers=2)
        ctx = plain.prepare(
            dataset.canonical_rows, table, store=dataset.columns
        )
        with _SharedContext(ctx.inner, plain.inner) as shared:
            assert shared.backend_spec == ("numpy",)
            assert len(shared.names) == 3


class TestConstructionAndStatus:
    def test_invalid_tier_arguments_raise(self):
        with pytest.raises(EngineError, match="packed tier"):
            make_bitset_backend(packed="simd")
        with pytest.raises(EngineError, match="kernel setting"):
            make_bitset_backend(kernel="maybe")

    def test_forcing_numpy_tier_without_numpy_raises(self):
        if numpy_available():
            pytest.skip("NumPy installed; the python tier is forced "
                        "explicitly elsewhere")
        with pytest.raises(EngineError):
            make_bitset_backend(packed="numpy")

    def test_python_tier_forced_with_numpy_present(self):
        backend = make_bitset_backend(packed="python")
        assert backend.vectorized is False
        assert not backend.compiled
        assert "python-int" in backend.availability_detail()

    def test_backend_status_reports_bitset(self):
        status = backend_status("bitset")
        assert isinstance(status, BackendStatus)
        assert status.name == "bitset"
        assert status.available
        assert "tier" in status.detail or "lanes" in status.detail
        assert "bitset" in str(status)

    def test_backend_status_all_includes_bitset(self):
        names = [status.name for status in backend_status()]
        assert "bitset" in names
        assert names == sorted(names)

    def test_unknown_backend_error_lists_availability(self):
        with pytest.raises(EngineError, match="registered backends"):
            backend_status("bitst")
        with pytest.raises(EngineError, match="bitset"):
            get_backend("bitst")

    @needs_numpy
    def test_prepared_context_cached_per_table_and_store(self):
        dataset, table = _workload(300, seed=2)
        backend = make_bitset_backend(packed="numpy")
        first = backend.prepare(
            dataset.canonical_rows, table, store=dataset.columns
        )
        second = backend.prepare(
            dataset.canonical_rows, table, store=dataset.columns
        )
        assert first is second
        # Without a store there is no safe cache key: fresh context.
        third = backend.prepare(dataset.canonical_rows, table)
        assert third is not first


class TestPlannerRoute:
    """The planner's large-n/low-d bitset rule (unit level; the end-to-
    end service routing lives in tests/test_serve_planner.py)."""

    def _signals(self, rows, dims, available=True):
        from repro.serve.planner import PlanSignals

        return PlanSignals(
            dataset_rows=rows,
            preference_order=1,
            tree_available=False,
            tree_covers_query=False,
            adaptive_available=False,
            affected_members=0,
            template_skyline_size=0,
            mdc_available=False,
            backend_vectorized=True,
            dimensions=dims,
            bitset_available=available,
        )

    def test_large_low_dimensional_scan_routes_to_bitset(self):
        from repro.serve.planner import Planner

        plan = Planner().plan(self._signals(200_000, 6))
        assert plan.route == "bitset"
        assert "bit-parallel" in plan.reason

    def test_small_or_wide_scans_keep_the_kernel(self):
        from repro.serve.planner import Planner

        planner = Planner()
        assert planner.plan(self._signals(5_000, 6)).route == "kernel"
        assert planner.plan(self._signals(200_000, 9)).route == "kernel"
        assert planner.plan(
            self._signals(200_000, 6, available=False)
        ).route == "kernel"

    def test_thresholds_are_validated(self):
        from repro.serve.planner import PlannerConfig

        with pytest.raises(ValueError):
            PlannerConfig(bitset_min_rows=-1)
        with pytest.raises(ValueError):
            PlannerConfig(bitset_max_dims=0)
