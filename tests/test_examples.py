"""The example scripts must run end to end (scaled-down arguments)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, strip_pythonpath: bool = False) -> str:
    env = dict(os.environ)
    if strip_pythonpath:
        env.pop("PYTHONPATH", None)
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
        check=True,
        env=env,
    )
    return result.stdout


class TestQuickstart:
    def test_reproduces_table2(self):
        out = run_example("quickstart.py")
        assert "Alice" in out and "{a, c}" in out
        assert "Fred" in out and "{a, c, e, f}" in out
        assert "IPO-tree     -> {a, c, e, f}" in out
        assert "Progressive" in out

    def test_demonstrates_serving_layer(self):
        out = run_example("quickstart.py")
        assert "Serving layer" in out
        assert "cached=True" in out
        assert "full-domain chain aliases its prefix" in out

    def test_runs_without_pythonpath(self):
        """The scripts bootstrap sys.path themselves (_bootstrap.py)."""
        out = run_example("quickstart.py", strip_pythonpath=True)
        assert "Alice" in out


class TestTravelAgency:
    def test_runs_with_small_catalogue(self):
        out = run_example("travel_agency.py", "300")
        assert "answers ok" in out
        assert "MISMATCH" not in out
        assert "hybrid routing" in out


class TestNurseryAnalysis:
    def test_reports_figure8_loop(self):
        out = run_example("nursery_analysis.py")
        assert "12960 applications" in out
        assert "Figure 8 loop" in out
        assert "MISMATCH" not in out


class TestIncrementalUpdates:
    def test_all_batches_verified(self):
        out = run_example("incremental_updates.py")
        assert out.count(" ok") >= 8
        assert "MISMATCH" not in out


class TestEvaluatorZoo:
    def test_all_strategies_agree(self):
        out = run_example("evaluator_zoo.py")
        assert "identical skyline" in out
        assert "history-driven tree" in out
        assert "Full materialise" in out
