"""Tests for the random implicit-preference workload generator."""

import random

import pytest

from repro.core.preferences import Preference
from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
)
from repro.datagen.queries import generate_preference, generate_preferences
from repro.exceptions import PreferenceError


@pytest.fixture(scope="module")
def data():
    return generate(
        SyntheticConfig(
            num_points=300, num_numeric=2, num_nominal=2, cardinality=6,
            seed=13,
        )
    )


class TestShape:
    @pytest.mark.parametrize("order", [0, 1, 2, 3])
    def test_every_dimension_has_exact_order(self, data, order):
        pref = generate_preference(
            data, order, rng=random.Random(1)
        )
        for name in data.schema.nominal_names:
            assert pref[name].order == order

    def test_order_clamped_to_cardinality(self, data):
        pref = generate_preference(data, 99, rng=random.Random(2))
        for name in data.schema.nominal_names:
            assert pref[name].order == data.cardinality(name)

    def test_chain_values_distinct_and_valid(self, data):
        pref = generate_preference(data, 4, rng=random.Random(3))
        for name in data.schema.nominal_names:
            chain = pref[name].choices
            assert len(set(chain)) == len(chain)
            assert set(chain) <= set(data.schema.spec(name).domain)

    def test_negative_order_rejected(self, data):
        with pytest.raises(PreferenceError):
            generate_preference(data, -1)

    def test_unknown_weighting_rejected(self, data):
        with pytest.raises(PreferenceError):
            generate_preference(data, 2, weighting="popularity")


class TestTemplateRefinement:
    def test_chains_start_with_template(self, data):
        template = frequent_value_template(data)
        for pref in generate_preferences(
            data, 3, 20, template=template, seed=5
        ):
            assert pref.refines(template)
            for name in data.schema.nominal_names:
                assert pref[name].choices[0] == template[name].choices[0]

    def test_order_below_template_rejected(self, data):
        template = frequent_value_template(data, per_attribute_order=2)
        with pytest.raises(PreferenceError):
            generate_preference(data, 1, template=template)

    def test_order_zero_without_template_is_empty(self, data):
        assert generate_preference(data, 0) == Preference.empty()


class TestDeterminismAndWeighting:
    def test_batch_deterministic_in_seed(self, data):
        a = generate_preferences(data, 3, 10, seed=7)
        b = generate_preferences(data, 3, 10, seed=7)
        assert a == b

    def test_different_seeds_differ(self, data):
        a = generate_preferences(data, 3, 10, seed=7)
        b = generate_preferences(data, 3, 10, seed=8)
        assert a != b

    def test_frequency_weighting_prefers_popular_values(self, data):
        """The most frequent value should open far more chains than the
        least frequent one under frequency weighting."""
        prefs = generate_preferences(data, 1, 300, seed=9)
        top = data.most_frequent("nom0", 1)[0]
        bottom = data.most_frequent("nom0", 6)[-1]
        opens = [p["nom0"].choices[0] for p in prefs]
        assert opens.count(top) > opens.count(bottom)

    def test_uniform_weighting_covers_domain(self, data):
        prefs = generate_preferences(
            data, 1, 300, seed=10, weighting="uniform"
        )
        seen = {p["nom0"].choices[0] for p in prefs}
        assert seen == set(data.schema.spec("nom0").domain)
