"""Unit tests for the classical skyline algorithms (substrate S4)."""

import pytest

from repro.algorithms import ALGORITHMS, bnl_skyline, bruteforce_skyline, dandc_skyline, sfs_skyline
from repro.algorithms.sfs import sfs_scan, sort_by_score
from repro.core.dataset import Dataset
from repro.core.dominance import RankTable
from repro.core.preferences import Preference
from repro.core.skyline import skyline
from repro.datagen.generator import SyntheticConfig, generate
from repro.exceptions import ReproError

ALL_NAMES = sorted(ALGORITHMS)


def _table(dataset, preference=None):
    return RankTable.compile(dataset.schema, preference)


class TestAgainstPaperTable2:
    """Every algorithm must reproduce the customers' skylines."""

    CASES = [
        (Preference({"Hotel-group": "T < M < *"}), {0, 2}),  # Alice
        (None, {0, 2, 4, 5}),  # Bob
        (Preference({"Hotel-group": "H < M < *"}), {0, 2, 4}),  # Chris
        (Preference({"Hotel-group": "H < M < T"}), {0, 2, 4}),  # David
        (Preference({"Hotel-group": "H < T < *"}), {0, 2}),  # Emily
        (Preference({"Hotel-group": "M < *"}), {0, 2, 4, 5}),  # Fred
    ]

    @pytest.mark.parametrize("algorithm", ALL_NAMES)
    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_customer_skylines(self, vacation_data, algorithm, case):
        preference, expected = self.CASES[case]
        table = _table(vacation_data, preference)
        result = ALGORITHMS[algorithm](
            vacation_data.canonical_rows, vacation_data.ids, table
        )
        assert set(result) == expected


class TestAlgorithmEquivalence:
    @pytest.mark.parametrize("distribution", ["independent", "correlated", "anticorrelated"])
    @pytest.mark.parametrize("algorithm", ["bnl", "sfs", "dandc"])
    def test_matches_bruteforce_on_synthetic(self, distribution, algorithm):
        data = generate(
            SyntheticConfig(
                num_points=200,
                num_numeric=2,
                num_nominal=2,
                cardinality=4,
                distribution=distribution,
                seed=7,
            )
        )
        pref = Preference({"nom0": ["d0_v1", "d0_v0"], "nom1": ["d1_v2"]})
        table = _table(data, pref)
        truth = set(
            bruteforce_skyline(data.canonical_rows, data.ids, table)
        )
        got = set(
            ALGORITHMS[algorithm](data.canonical_rows, data.ids, table)
        )
        assert got == truth

    def test_empty_input(self, vacation_data):
        table = _table(vacation_data)
        for name in ALL_NAMES:
            assert ALGORITHMS[name](vacation_data.canonical_rows, [], table) == []

    def test_single_point(self, vacation_data):
        table = _table(vacation_data)
        for name in ALL_NAMES:
            assert ALGORITHMS[name](
                vacation_data.canonical_rows, [3], table
            ) == [3]

    def test_all_duplicates_survive(self, vacation_schema):
        data = Dataset(vacation_schema, [(1, 5, "T")] * 4)
        table = _table(data)
        for name in ALL_NAMES:
            assert sorted(
                ALGORITHMS[name](data.canonical_rows, data.ids, table)
            ) == [0, 1, 2, 3]

    def test_subset_ids_only(self, vacation_data):
        # Restricting to {b, d, f}: b dominates nothing here; d vs f and
        # b vs d/f are nominal-incomparable without preferences; b vs d:
        # 2400<3600 price, 1<4 class -> incomparable. All three survive?
        # b=(2400,1,T) d=(3600,4,H) f=(3000,3,M): pairwise incomparable.
        table = _table(vacation_data)
        for name in ALL_NAMES:
            assert sorted(
                ALGORITHMS[name](vacation_data.canonical_rows, [1, 3, 5], table)
            ) == [1, 3, 5]


class TestSFSInternals:
    def test_sort_by_score_is_monotone_visit_order(self, small_synthetic):
        table = _table(small_synthetic)
        order = sort_by_score(
            small_synthetic.canonical_rows, small_synthetic.ids, table
        )
        scores = [table.score(small_synthetic.canonical(i)) for i in order]
        assert scores == sorted(scores)

    def test_sfs_scan_is_progressive(self, small_synthetic):
        """Every prefix of the scan output is a subset of the skyline."""
        table = _table(small_synthetic)
        rows = small_synthetic.canonical_rows
        truth = set(bruteforce_skyline(rows, small_synthetic.ids, table))
        seen = []
        for point_id in sfs_scan(
            rows, sort_by_score(rows, small_synthetic.ids, table), table
        ):
            seen.append(point_id)
            assert point_id in truth
        assert set(seen) == truth


class TestSkylineDispatch:
    def test_unknown_algorithm_raises(self, vacation_data):
        with pytest.raises(ReproError):
            skyline(vacation_data, algorithm="quantum")

    def test_result_container(self, vacation_data):
        result = skyline(vacation_data)
        assert len(result) == 4
        assert 0 in result
        assert 1 not in result
        assert result.rows()[0] == (1600, 4, "T")
        assert result.to_set() == frozenset({0, 2, 4, 5})
        assert list(iter(result)) == sorted(result.ids)

    def test_ids_restriction(self, vacation_data):
        result = skyline(vacation_data, ids=[1, 3, 5])
        assert result.ids == (1, 3, 5)

    def test_template_applies(self, vacation_data):
        template = Preference({"Hotel-group": "H < *"})
        result = skyline(vacation_data, template=template)
        assert set(result.ids) == {0, 2, 4}  # Chris-like first-order H<*?
        # H < * disqualifies f (dominated by c via H<M) but keeps e?
        # e=(2400,2,M): a dominates on numerics but T vs M incomparable;
        # c=(3000,5,H) vs e: price worse. e stays.
