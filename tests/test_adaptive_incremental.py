"""Incremental maintenance tests for Adaptive SFS (Section 4.3)."""

import random

import pytest

from repro.adaptive.adaptive_sfs import AdaptiveSFS
from repro.core.dataset import Dataset
from repro.core.preferences import Preference
from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
)
from repro.exceptions import DatasetError


def make_index(n=120, seed=1, with_template=False):
    data = generate(
        SyntheticConfig(
            num_points=n, num_numeric=2, num_nominal=2, cardinality=4,
            seed=seed,
        )
    )
    template = frequent_value_template(data) if with_template else None
    return data, AdaptiveSFS(data, template)


def random_row(step):
    """One fresh random row compatible with make_index's schema."""
    return generate(
        SyntheticConfig(
            num_points=1, num_numeric=2, num_nominal=2, cardinality=4,
            seed=10_000 + step,
        )
    ).row(0)


class TestInsert:
    def test_dominated_insert_leaves_skyline(self):
        _, index = make_index()
        before = index.skyline_ids
        # A row worse than everything numerically, holding arbitrary
        # nominal values: cannot displace, may or may not enter.
        new_id = index.insert((10.0, 10.0, "d0_v0", "d1_v0"))
        assert new_id == index.num_points - 1
        index_ids = set(index.skyline_ids)
        assert set(before) - index_ids == set()  # nothing evicted wrongly?
        index.rebuild()
        assert set(index.skyline_ids) == index_ids

    def test_dominating_insert_evicts(self):
        _, index = make_index()
        # A row better than everything numerically with the most common
        # nominal values evicts all members sharing those values.
        new_id = index.insert((-1.0, -1.0, "d0_v0", "d1_v0"))
        assert new_id in index.skyline_ids
        snapshot = set(index.skyline_ids)
        index.rebuild()
        assert set(index.skyline_ids) == snapshot

    def test_insert_validates_row(self):
        _, index = make_index()
        with pytest.raises(Exception):
            index.insert((0.5, 0.5, "bogus", "d1_v0"))

    def test_insert_then_query(self):
        data, index = make_index()
        index.insert((-1.0, -1.0, "d0_v1", "d1_v1"))
        pref = Preference({"nom0": ["d0_v1"]})
        fresh = AdaptiveSFS(
            Dataset(
                data.schema, list(data) + [(-1.0, -1.0, "d0_v1", "d1_v1")]
            )
        )
        assert index.query(pref) == fresh.query(pref)


class TestDelete:
    def test_delete_non_member_is_noop_for_skyline(self):
        _, index = make_index()
        non_member = next(
            i for i in range(index.num_points) if i not in set(index.skyline_ids)
        )
        before = index.skyline_ids
        index.delete(non_member)
        assert index.skyline_ids == before

    def test_delete_member_readmits_shadowed_points(self):
        _, index = make_index()
        member = index.skyline_ids[0]
        index.delete(member)
        snapshot = set(index.skyline_ids)
        index.rebuild()
        assert set(index.skyline_ids) == snapshot
        assert member not in snapshot

    def test_double_delete_raises(self):
        _, index = make_index()
        index.delete(0)
        with pytest.raises(DatasetError):
            index.delete(0)

    def test_delete_unknown_id_raises(self):
        _, index = make_index()
        with pytest.raises(DatasetError):
            index.delete(10_000)


class TestRandomisedChurn:
    @pytest.mark.parametrize("with_template", [False, True])
    def test_interleaved_updates_match_rebuild(self, with_template):
        rng = random.Random(5)
        _, index = make_index(with_template=with_template)
        live = list(range(index.num_points))
        for step in range(60):
            if rng.random() < 0.45 and live:
                victim = live.pop(rng.randrange(len(live)))
                index.delete(victim)
            else:
                live.append(index.insert(random_row(step)))
            if step % 15 == 14:
                snapshot = set(index.skyline_ids)
                index.rebuild()
                assert set(index.skyline_ids) == snapshot

    def test_queries_stay_correct_under_churn(self):
        rng = random.Random(9)
        data, index = make_index(seed=2)
        rows = {i: data.row(i) for i in range(len(data))}
        for step in range(40):
            if rng.random() < 0.4 and rows:
                victim = rng.choice(sorted(rows))
                del rows[victim]
                index.delete(victim)
            else:
                row = random_row(step + 500)
                rows[index.insert(row)] = row
        # Compare a query against a fresh index over the surviving rows.
        pref = Preference({"nom0": ["d0_v2", "d0_v0"], "nom1": ["d1_v1"]})
        fresh = AdaptiveSFS(Dataset(data.schema, list(rows.values())))
        relabel = {new: old for new, old in enumerate(sorted(rows))}
        expected = sorted(relabel[i] for i in fresh.query(pref))
        assert index.query(pref) == expected
