"""Tests for the machine-checked paper shape expectations."""

from dataclasses import replace

import pytest

from repro.bench.paper_reference import (
    check_figure,
    claims_for,
    render_verdicts,
)
from repro.bench.runner import RunResult, run_spec
from tests.test_bench import tiny_spec


def synthetic_result(x, *, ipo=1e-5, ipo_k=2e-5, sfs_a=1e-3, sfs_d=1e-1,
                     sky=0.3, affect=0.5, refined=0.8,
                     ipo_store=1000, ipo_k_store=400, sfs_d_store=4000):
    """A hand-built RunResult for checker-logic tests."""
    spec = tiny_spec(x=x)
    result = RunResult(spec=spec, num_points=100, skyline_size=30)
    result.preprocessing_seconds = {
        "IPO Tree": 1.0, "IPO Tree-k": 0.8, "SFS-A": 0.1, "SFS-D": 0.0,
    }
    result.query_seconds = {
        "IPO Tree": ipo, "IPO Tree-k": ipo_k, "SFS-A": sfs_a, "SFS-D": sfs_d,
    }
    result.storage_bytes = {
        "IPO Tree": ipo_store, "IPO Tree-k": ipo_k_store,
        "SFS-A": 500, "SFS-D": sfs_d_store,
    }
    result.sky_ratio = sky
    result.affect_ratio = affect
    result.refined_sky_ratio = refined
    return result


class TestCheckerLogic:
    def test_ideal_fig4_passes_everything(self):
        results = [
            synthetic_result(1000, sfs_d=0.1, sky=0.4, sfs_d_store=4000),
            synthetic_result(2000, sfs_d=0.2, sky=0.3, sfs_d_store=8000),
            synthetic_result(4000, sfs_d=0.4, sky=0.2, sfs_d_store=16000),
        ]
        verdicts = check_figure("fig4", results)
        assert all(holds for _claim, holds in verdicts)

    def test_slow_ipo_flagged(self):
        results = [
            synthetic_result(1, ipo=1.0),  # IPO slower than everything
            synthetic_result(2, ipo=1.0),
        ]
        verdicts = dict(check_figure("fig4", results))
        assert not verdicts[
            "IPO Tree has the fastest queries of all methods"
        ]

    def test_mismatches_flagged(self):
        result = synthetic_result(1)
        result.mismatches = 3
        verdicts = dict(check_figure("fig4", [result]))
        assert not verdicts[
            "every method returned identical skylines on every query"
        ]

    def test_fig7_flat_storage_claim(self):
        results = [synthetic_result(x) for x in (1, 2, 3)]
        verdicts = dict(check_figure("fig7", results))
        assert verdicts["storage is unaffected by the preference order"]
        results[1].storage_bytes = dict(
            results[1].storage_bytes, **{"IPO Tree": 999_999}
        )
        verdicts = dict(check_figure("fig7", results))
        assert not verdicts["storage is unaffected by the preference order"]

    def test_broken_check_counts_as_failure(self):
        # Claims evaluated over an empty result list must not raise.
        verdicts = check_figure("fig5", [])
        assert isinstance(verdicts, list)

    def test_claims_for_unknown_figure_still_has_common(self):
        assert len(claims_for("figX")) == 5

    def test_render_verdicts(self):
        text = render_verdicts([("a claim", True), ("bad claim", False)])
        assert "[ok] a claim" in text
        assert "[XX] bad claim" in text


class TestAgainstRealRuns:
    """The robust common claims must hold on an actual tiny sweep."""

    def test_common_claims_on_tiny_sweep(self):
        from repro.datagen.generator import SyntheticConfig, generate

        bigger = SyntheticConfig(
            num_points=120, num_numeric=2, num_nominal=2, cardinality=4,
            seed=4,
        )
        results = [
            run_spec(tiny_spec(x=60)),
            run_spec(
                tiny_spec(x=120, dataset_builder=lambda: generate(bigger))
            ),
        ]
        verdicts = dict(check_figure("figX", results))
        assert verdicts[
            "every method returned identical skylines on every query"
        ]
        assert verdicts["IPO Tree has the fastest queries of all methods"]
        assert verdicts["IPO Tree preprocessing exceeds SFS-A preprocessing"]
        # The ">= 10x" separation claims need harness-scale datasets (the
        # scaled sweeps show 100-600x); at 60-120 rows the gaps compress,
        # so they are exercised by the CLI's --check-shapes, not here.
