"""Tests for the exact Nursery regeneration (Section 5.2's dataset)."""

import pytest

from repro.core.attributes import AttributeKind
from repro.core.skyline import skyline
from repro.datagen.nursery import (
    NOMINAL_ATTRIBUTES,
    NURSERY_DOMAINS,
    NUM_INSTANCES,
    nursery_dataset,
    nursery_rows,
    nursery_schema,
)


class TestShape:
    def test_row_count_is_12960(self):
        assert len(nursery_rows()) == NUM_INSTANCES == 12960

    def test_cartesian_product_size(self):
        product = 1
        for _name, domain in NURSERY_DOMAINS:
            product *= len(domain)
        assert product == NUM_INSTANCES

    def test_rows_unique(self):
        rows = nursery_rows()
        assert len(set(rows)) == len(rows)

    def test_eight_attributes(self):
        assert len(nursery_schema()) == 8

    def test_first_and_last_rows_follow_uci_enumeration(self):
        rows = nursery_rows()
        assert rows[0] == (
            "usual", "proper", "complete", "1",
            "convenient", "convenient", "nonprob", "recommended",
        )
        assert rows[-1] == (
            "great_pret", "very_crit", "foster", "more",
            "critical", "inconv", "problematic", "not_recom",
        )


class TestSchemaSetup:
    def test_two_nominal_attributes(self):
        schema = nursery_schema()
        assert schema.nominal_names == NOMINAL_ATTRIBUTES == ("form", "children")

    def test_nominal_cardinalities_are_four(self):
        schema = nursery_schema()
        for name in NOMINAL_ATTRIBUTES:
            assert schema.spec(name).cardinality == 4

    def test_other_attributes_are_ordinal(self):
        schema = nursery_schema()
        for spec in schema:
            if spec.name not in NOMINAL_ATTRIBUTES:
                assert spec.kind is AttributeKind.ORDINAL

    def test_every_value_valid(self):
        data = nursery_dataset()
        # Spot-check canonical encoding of an ordinal attribute.
        assert data.canonical(0)[0] == 0.0  # "usual" is best


class TestSkylineBehaviour:
    def test_template_skyline_nonempty_and_small(self):
        data = nursery_dataset()
        base = skyline(data)
        assert 0 < len(base) < 200

    def test_skyline_contains_all_best_row(self):
        """The all-best row dominates aggressively and must be a member."""
        data = nursery_dataset()
        base = skyline(data)
        assert 0 in base  # row 0 is best on every ordinal attribute

    def test_preference_shrinks_skyline(self):
        from repro.core.preferences import Preference

        data = nursery_dataset()
        base = set(skyline(data).ids)
        refined = set(
            skyline(data, Preference({"form": ["complete"]})).ids
        )
        assert refined <= base
        assert len(refined) < len(base)
