"""Unit tests for implicit preferences (Definition 2) and Preference."""

import pytest

from repro.core.attributes import Schema, nominal, numeric_min
from repro.core.preferences import ImplicitPreference, Preference
from repro.exceptions import PreferenceError, RefinementError

DOMAIN = ("T", "H", "M")


class TestImplicitPreferenceParsing:
    def test_parse_ascii(self):
        assert ImplicitPreference.parse("T < M < *").choices == ("T", "M")

    def test_parse_paper_glyph(self):
        assert ImplicitPreference.parse("H≺M≺*").choices == ("H", "M")

    def test_parse_without_star(self):
        assert ImplicitPreference.parse("T < M").choices == ("T", "M")

    def test_parse_empty_forms(self):
        for text in ("", "*", "φ", "phi"):
            assert ImplicitPreference.parse(text).is_empty

    def test_star_in_middle_rejected(self):
        with pytest.raises(PreferenceError):
            ImplicitPreference.parse("T < * < M")

    def test_roundtrip_str(self):
        pref = ImplicitPreference.parse("T < M < *")
        assert ImplicitPreference.parse(str(pref)) == pref

    def test_empty_str_is_star(self):
        assert str(ImplicitPreference()) == "*"


class TestImplicitPreferenceBasics:
    def test_duplicate_value_rejected(self):
        with pytest.raises(PreferenceError):
            ImplicitPreference(("T", "T"))

    def test_order(self):
        assert ImplicitPreference(("T", "M")).order == 2
        assert ImplicitPreference().order == 0

    def test_membership(self):
        pref = ImplicitPreference(("T", "M"))
        assert "T" in pref
        assert "H" not in pref

    def test_entry_is_one_based(self):
        pref = ImplicitPreference(("T", "M"))
        assert pref.entry(1) == "T"
        assert pref.entry(2) == "M"

    def test_entry_out_of_range(self):
        with pytest.raises(PreferenceError):
            ImplicitPreference(("T",)).entry(2)

    def test_bool(self):
        assert ImplicitPreference(("T",))
        assert not ImplicitPreference()

    def test_prefix(self):
        pref = ImplicitPreference(("T", "M", "H"))
        assert pref.prefix(2).choices == ("T", "M")
        assert pref.prefix(0).is_empty

    def test_prefix_out_of_range(self):
        with pytest.raises(PreferenceError):
            ImplicitPreference(("T",)).prefix(5)

    def test_extended_with(self):
        assert ImplicitPreference(("T",)).extended_with("M").choices == (
            "T",
            "M",
        )

    def test_extended_with_duplicate_rejected(self):
        with pytest.raises(PreferenceError):
            ImplicitPreference(("T",)).extended_with("T")


class TestImplicitPreferenceSemantics:
    def test_to_partial_order_matches_definition2(self):
        # "H < M < *" over {T, H, M}: {(H,M),(H,T),(M,T)}.
        pref = ImplicitPreference(("H", "M"))
        order = pref.to_partial_order(DOMAIN)
        assert order.pairs == frozenset({("H", "M"), ("H", "T"), ("M", "T")})

    def test_unlisted_values_incomparable(self):
        pref = ImplicitPreference(("T",))
        order = pref.to_partial_order(("T", "H", "M", "X"))
        assert not order.comparable("H", "M")
        assert order.better("T", "X")

    def test_empty_preference_orders_nothing(self):
        order = ImplicitPreference().to_partial_order(DOMAIN)
        assert len(order) == 0

    def test_validate_against_rejects_foreign_value(self):
        with pytest.raises(PreferenceError):
            ImplicitPreference(("X",)).validate_against(DOMAIN)

    def test_rank_map_section_4_2(self):
        pref = ImplicitPreference(("H", "M"))
        ranks = pref.rank_map(DOMAIN)
        assert ranks == {"H": 1, "M": 2, "T": 3}

    def test_rank_map_default_is_cardinality(self):
        ranks = ImplicitPreference().rank_map(("a", "b", "c", "d"))
        assert set(ranks.values()) == {4}

    def test_full_chain_rank_map(self):
        ranks = ImplicitPreference(("H", "M", "T")).rank_map(DOMAIN)
        assert ranks == {"H": 1, "M": 2, "T": 3}


class TestImplicitPreferenceRelations:
    def test_refines_prefix_rule(self):
        base = ImplicitPreference(("T",))
        refined = ImplicitPreference(("T", "M"))
        assert refined.refines(base)
        assert not base.refines(refined)

    def test_non_prefix_does_not_refine(self):
        base = ImplicitPreference(("T",))
        other = ImplicitPreference(("M", "T"))
        assert not other.refines(base)

    def test_refines_matches_pair_set_semantics(self):
        base = ImplicitPreference(("T",))
        refined = ImplicitPreference(("T", "M"))
        assert refined.to_partial_order(DOMAIN).refines(
            base.to_partial_order(DOMAIN)
        )

    def test_conflict_free_prefixes(self):
        assert ImplicitPreference(("T", "M")).conflict_free(
            ImplicitPreference(("T",))
        )

    def test_first_order_pair_conflicts(self):
        # "M < *" vs "H < *" contain (M,H) and (H,M) - the Figure 1 case.
        assert not ImplicitPreference(("M",)).conflict_free(
            ImplicitPreference(("H",))
        )


class TestPreference:
    def make_schema(self) -> Schema:
        return Schema(
            [
                numeric_min("Price"),
                nominal("Group", DOMAIN),
                nominal("Airline", ("G", "R", "W")),
            ]
        )

    def test_parse_multi_clause(self):
        pref = Preference.parse("Group: M < H < *; Airline: G < *")
        assert pref["Group"].choices == ("M", "H")
        assert pref["Airline"].choices == ("G",)

    def test_parse_bad_clause(self):
        with pytest.raises(PreferenceError):
            Preference.parse("no colon here")

    def test_unmentioned_attribute_is_empty(self):
        pref = Preference({"Group": "M < *"})
        assert pref["Airline"].is_empty

    def test_empty_chains_dropped(self):
        pref = Preference({"Group": ""})
        assert "Group" not in pref
        assert not pref

    def test_order_is_max(self):
        pref = Preference({"Group": "M < H < *", "Airline": "G < *"})
        assert pref.order == 2
        assert Preference.empty().order == 0

    def test_coerce_from_list(self):
        assert Preference({"Group": ["M", "H"]})["Group"].choices == ("M", "H")

    def test_coerce_rejects_garbage(self):
        with pytest.raises(PreferenceError):
            Preference({"Group": 42})

    def test_validate_against_unknown_attribute(self):
        with pytest.raises(PreferenceError):
            Preference({"Nope": "a < *"}).validate_against(self.make_schema())

    def test_validate_against_numeric_attribute(self):
        with pytest.raises(PreferenceError):
            Preference({"Price": "T < *"}).validate_against(self.make_schema())

    def test_validate_against_foreign_value(self):
        with pytest.raises(PreferenceError):
            Preference({"Group": "X < *"}).validate_against(self.make_schema())

    def test_pair_sets(self):
        pref = Preference({"Group": "H < M < *"})
        pairs = pref.pair_sets(self.make_schema())
        assert pairs["Group"] == frozenset(
            {("H", "M"), ("H", "T"), ("M", "T")}
        )

    def test_refines_multi_dimensional(self):
        template = Preference({"Group": "T < *"})
        good = Preference({"Group": "T < M < *", "Airline": "G < *"})
        bad = Preference({"Group": "M < *"})
        assert good.refines(template)
        assert not bad.refines(template)

    def test_merged_over_inherits_template(self):
        template = Preference({"Group": "T < *"})
        merged = Preference({"Airline": "G < *"}).merged_over(template)
        assert merged["Group"].choices == ("T",)
        assert merged["Airline"].choices == ("G",)

    def test_merged_over_rejects_conflict(self):
        template = Preference({"Group": "T < *"})
        with pytest.raises(RefinementError):
            Preference({"Group": "M < *"}).merged_over(template)

    def test_with_dimension_replaces(self):
        pref = Preference({"Group": "T < *"})
        out = pref.with_dimension("Group", ImplicitPreference(("M",)))
        assert out["Group"].choices == ("M",)

    def test_with_dimension_empty_removes(self):
        pref = Preference({"Group": "T < *"})
        out = pref.with_dimension("Group", ImplicitPreference())
        assert not out

    def test_restricted_to(self):
        pref = Preference({"Group": "T < *", "Airline": "G < *"})
        assert pref.restricted_to(["Group"]).attributes == ("Group",)

    def test_hash_and_equality(self):
        a = Preference({"Group": "T < M < *"})
        b = Preference({"Group": ["T", "M"]})
        assert a == b
        assert hash(a) == hash(b)

    def test_str_sorted_by_attribute(self):
        pref = Preference({"Group": "T < *", "Airline": "G < *"})
        assert str(pref) == "Airline: G < *; Group: T < *"
