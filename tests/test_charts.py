"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.charts import ascii_chart, chart_query_times


class TestAsciiChart:
    def test_contains_title_and_legend(self):
        chart = ascii_chart(
            {"A": [(1, 10.0), (2, 100.0)], "B": [(1, 5.0), (2, 7.0)]},
            title="demo",
        )
        assert "demo" in chart
        assert "* A" in chart
        assert "o B" in chart

    def test_marks_plotted(self):
        chart = ascii_chart({"A": [(1, 1.0), (10, 1000.0)]})
        assert "*" in chart

    def test_empty_series(self):
        assert "(no data)" in ascii_chart({}, title="empty")

    def test_single_point(self):
        chart = ascii_chart({"A": [(5, 42.0)]})
        assert "*" in chart

    def test_log_scale_orders_extremes(self):
        """The larger value must land on a higher row than the smaller."""
        chart = ascii_chart(
            {"A": [(1, 1.0), (2, 10000.0)]}, width=20, height=10
        )
        lines = [l for l in chart.splitlines() if "|" in l]
        star_rows = [i for i, l in enumerate(lines) if "*" in l]
        assert star_rows[0] < star_rows[-1]
        assert star_rows[0] == 0
        assert star_rows[-1] == len(lines) - 1

    def test_linear_scale(self):
        chart = ascii_chart({"A": [(0, 0.0), (1, 10.0)]}, logy=False)
        assert "*" in chart

    def test_nonpositive_values_clamped_on_log(self):
        chart = ascii_chart({"A": [(0, 0.0), (1, 10.0)]}, logy=True)
        assert "*" in chart


class TestChartQueryTimes:
    def test_renders_from_run_results(self):
        from repro.bench.runner import run_spec
        from tests.test_bench import tiny_spec

        results = [run_spec(tiny_spec(x=40)), run_spec(tiny_spec(x=80))]
        chart = chart_query_times(results, title="tiny")
        assert "tiny" in chart
        assert "SFS-D" in chart

    def test_skips_nan_series(self):
        from repro.bench.runner import run_spec
        from tests.test_bench import tiny_spec

        results = [run_spec(tiny_spec(), include_sfs_d=False)]
        chart = chart_query_times(results)
        assert "SFS-D" not in chart
