"""Direct tests of Theorem 2 (the Merging Property).

The theorem: let R~' and R~'' differ only at dimension i, with
R~'_i = "v1 < ... < v_{x-1} < *" and R~''_i = "vx < *"; let
PSKY(R~') be the points of SKY(R~') whose D_i value is listed by R~'.
Then for R~'''_i = "v1 < ... < vx < *":

    SKY(R~''') = (SKY(R~') ∩ SKY(R~'')) ∪ PSKY(R~')

These tests check the identity itself (not the IPO-tree) against brute
force on synthetic workloads, including the accumulated-disqualified
variant used by the implementation.
"""

import itertools

import pytest

from repro.core.preferences import ImplicitPreference, Preference
from repro.core.skyline import skyline
from repro.datagen.generator import SyntheticConfig, generate


def merge_by_theorem2(data, attribute, chain, other_dims):
    """Build SKY for ``chain`` on ``attribute`` via repeated merging."""
    def sky(chain_values):
        pref = dict(other_dims)
        if chain_values:
            pref[attribute] = ImplicitPreference(tuple(chain_values))
        return set(skyline(data, Preference(pref), algorithm="bruteforce").ids)

    idx = data.schema.index_of(attribute)
    rows = data.canonical_rows
    value_ids = {
        v: data.value_id(attribute, v) for v in chain
    }

    current = sky(chain[:1])
    for x in range(2, len(chain) + 1):
        prefix = chain[: x - 1]
        single = sky([chain[x - 1]])
        psky = {
            p
            for p in current
            if rows[p][idx] in {value_ids[v] for v in prefix}
        }
        current = (current & single) | psky
    return current


@pytest.fixture(scope="module")
def data():
    return generate(
        SyntheticConfig(
            num_points=160, num_numeric=2, num_nominal=2, cardinality=4,
            seed=31,
        )
    )


class TestTheorem2:
    @pytest.mark.parametrize("chain_length", [2, 3, 4])
    def test_merge_equals_direct(self, data, chain_length):
        domain = data.schema.spec("nom0").domain
        for chain in itertools.permutations(domain, chain_length):
            expected = set(
                skyline(
                    data,
                    Preference({"nom0": ImplicitPreference(chain)}),
                    algorithm="bruteforce",
                ).ids
            )
            merged = merge_by_theorem2(data, "nom0", list(chain), {})
            assert merged == expected, chain

    def test_merge_with_other_dimension_fixed(self, data):
        other = {"nom1": ImplicitPreference(("d1_v2", "d1_v0"))}
        chain = ["d0_v1", "d0_v3", "d0_v0"]
        expected = set(
            skyline(
                data,
                Preference(
                    {"nom0": ImplicitPreference(tuple(chain)), **other}
                ),
                algorithm="bruteforce",
            ).ids
        )
        merged = merge_by_theorem2(data, "nom0", chain, other)
        assert merged == expected

    def test_accumulated_disqualified_form(self, data):
        """The complement-space identity A''' = A' ∪ (A'' - B)."""
        base = set(skyline(data, algorithm="bruteforce").ids)
        idx = data.schema.index_of("nom0")
        rows = data.canonical_rows
        v1 = data.value_id("nom0", "d0_v1")

        sky1 = set(
            skyline(data, Preference({"nom0": ["d0_v1"]})).ids
        )
        sky2 = set(
            skyline(data, Preference({"nom0": ["d0_v2"]})).ids
        )
        sky12 = set(
            skyline(data, Preference({"nom0": ["d0_v1", "d0_v2"]})).ids
        )
        a1 = base - sky1
        a2 = base - sky2
        b = {p for p in a2 if rows[p][idx] == v1}
        assert base - sky12 == a1 | (a2 - b)

    def test_conflicting_first_orders_not_conflict_free(self, data):
        """The two merged sub-preferences genuinely conflict (Figure 1)."""
        schema = data.schema
        p1 = Preference({"nom0": ["d0_v1"]})
        p2 = Preference({"nom0": ["d0_v2"]})
        assert not p1.conflict_free(p2)
