"""Unit tests for the fault-injection and resilience machinery.

Three layers, no sockets:

* :mod:`repro.faults` - plan determinism, explicit schedules,
  probability rules, spec validation, env activation.
* :mod:`repro.net.resilient` - the backoff schedule, the circuit
  breaker state machine (driven by a fake clock), and the retry core
  (driven by scripted fake responses and a recording sleeper).
* :mod:`repro.net.idempotency` - the reserve / fulfil / abandon
  protocol and the bounded-LRU eviction rules.

End-to-end behaviour over real sockets lives in ``test_chaos.py``.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import faults
from repro.faults import (
    Fault,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    plan_from_dict,
    plan_from_env,
)
from repro.net.client import NetResponse, NetRequestError, parse_retry_after
from repro.net.idempotency import IdempotencyIndex
from repro.net.resilient import (
    CircuitBreaker,
    CircuitOpenError,
    ResilientClient,
    RetriesExhausted,
    RetryPolicy,
)


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------
def test_draw_without_plan_is_none_and_free():
    faults.clear()
    assert faults.active() is None
    assert faults.draw("wal.append") is None


def test_explicit_schedule_fires_on_exact_crossings():
    plan = FaultPlan(rules=[
        FaultRule(site="wal.append", kind="enospc", at=(2, 4)),
    ])
    fired = [plan.draw("wal.append") for _ in range(5)]
    assert [f.kind if f else None for f in fired] == [
        None, "enospc", None, "enospc", None,
    ]
    assert plan.crossings("wal.append") == 5
    assert plan.injected() == {"wal.append:enospc": 2}


def test_times_caps_and_after_skips():
    plan = FaultPlan(rules=[
        FaultRule(site="net.send", kind="drop", after=2, times=1),
    ])
    fired = [plan.draw("net.send") for _ in range(5)]
    # Skips crossings 1-2, fires on 3, then the times=1 cap holds.
    assert [f.kind if f else None for f in fired] == [
        None, None, "drop", None, None,
    ]


def test_probability_draws_are_seed_deterministic():
    def run(seed):
        plan = FaultPlan(seed=seed, rules=[
            FaultRule(site="serve.execute", kind="abort", probability=0.3),
        ])
        return [
            plan.draw("serve.execute") is not None for _ in range(50)
        ]

    assert run(7) == run(7)
    assert run(7) != run(8)  # astronomically unlikely to collide
    assert 0 < sum(run(7)) < 50  # neither always nor never


def test_sites_are_independent_counters():
    plan = FaultPlan(rules=[
        FaultRule(site="wal.append", kind="enospc", at=(1,)),
    ])
    assert plan.draw("net.send") is None
    assert plan.draw("wal.append").kind == "enospc"
    assert plan.crossings("net.send") == 1
    assert plan.crossings("wal.append") == 1


def test_use_context_manager_restores_previous_plan():
    faults.clear()
    outer = FaultPlan()
    faults.install(outer)
    try:
        with faults.use(FaultPlan()) as inner:
            assert faults.active() is inner
        assert faults.active() is outer
    finally:
        faults.clear()


def test_rule_validation_rejects_bad_values():
    with pytest.raises(FaultSpecError, match="probability"):
        FaultRule(site="wal.append", kind="enospc", probability=1.5)
    with pytest.raises(FaultSpecError, match="1-based"):
        FaultRule(site="wal.append", kind="enospc", at=(0,))
    with pytest.raises(FaultSpecError, match="times"):
        FaultRule(site="wal.append", kind="enospc", times=0)
    with pytest.raises(FaultSpecError, match="delay"):
        FaultRule(site="wal.append", kind="slow", delay=-1.0)


def test_plan_from_dict_rejects_unknown_sites_and_keys():
    with pytest.raises(FaultSpecError, match="unknown fault site"):
        plan_from_dict({"rules": [{"site": "wal.oops", "kind": "enospc"}]})
    with pytest.raises(FaultSpecError, match="unknown fault rule keys"):
        plan_from_dict(
            {"rules": [{"site": "wal.append", "kind": "x", "when": 3}]}
        )
    with pytest.raises(FaultSpecError, match="unknown fault spec keys"):
        plan_from_dict({"sed": 3})


def test_plan_from_env_round_trips_a_spec():
    spec = {
        "seed": 11,
        "rules": [{"site": "wal.append", "kind": "torn", "at": [3]}],
    }
    plan = plan_from_env({faults.FAULTS_ENV_VAR: json.dumps(spec)})
    assert plan is not None and plan.seed == 11
    assert [plan.draw("wal.append") for _ in range(3)][-1] == Fault(
        "wal.append", "torn"
    )
    assert plan_from_env({}) is None
    with pytest.raises(FaultSpecError, match="not valid JSON"):
        plan_from_env({faults.FAULTS_ENV_VAR: "{nope"})


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
def test_retry_after_overrides_backoff_but_is_capped():
    policy = RetryPolicy(base_delay=0.1, max_delay=2.0)
    rng = random.Random(0)
    assert policy.delay(1, 0.5, rng) == 0.5
    assert policy.delay(1, 99.0, rng) == 2.0


def test_full_jitter_stays_within_the_exponential_ceiling():
    policy = RetryPolicy(base_delay=0.1, max_delay=2.0)
    rng = random.Random(0)
    for attempt in range(1, 8):
        ceiling = min(2.0, 0.1 * (2 ** (attempt - 1)))
        for _ in range(20):
            assert 0.0 <= policy.delay(attempt, None, rng) <= ceiling


def test_policy_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="base_delay"):
        RetryPolicy(base_delay=2.0, max_delay=1.0)


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------
class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_breaker_trips_after_threshold_and_fails_fast():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=clock)
    for _ in range(2):
        breaker.failure()
    assert breaker.state == "closed"
    breaker.failure()
    assert breaker.state == "open"
    assert breaker.opens == 1
    with pytest.raises(CircuitOpenError) as info:
        breaker.admit()
    assert 0 < info.value.retry_in <= 5.0


def test_half_open_probe_success_closes():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
    breaker.failure()
    clock.now += 5.0
    assert breaker.state == "half-open"
    breaker.admit()  # the probe
    breaker.success()
    assert breaker.state == "closed"
    breaker.admit()  # normal traffic flows again


def test_half_open_probe_failure_reopens_for_a_fresh_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
    breaker.failure()
    clock.now += 5.0
    breaker.admit()  # probe admitted
    breaker.failure()  # probe failed
    assert breaker.state == "open"
    assert breaker.opens == 2
    with pytest.raises(CircuitOpenError):
        breaker.admit()
    clock.now += 5.0
    breaker.admit()  # next probe allowed after the fresh cooldown


# ---------------------------------------------------------------------------
# retry core (scripted responses, no sockets)
# ---------------------------------------------------------------------------
def _response(status, headers=None, body=b"{}"):
    return NetResponse(status, headers or {}, body)


def _scripted_client(script, **kwargs):
    """A ResilientClient whose sends pop from ``script`` (no network).

    ``script`` entries are NetResponse objects or exceptions; the
    recorded sleep delays are returned alongside the client.
    """
    sleeps = []
    client = ResilientClient(
        "127.0.0.1", 1, seed=0, sleeper=sleeps.append, **kwargs
    )

    def send():
        step = script.pop(0)
        if isinstance(step, BaseException):
            raise step
        return step

    return client, send, sleeps


def test_retries_503_until_success_and_honours_retry_after():
    script = [
        _response(503, {"Retry-After": "0.25"}),
        _response(503),
        _response(200),
    ]
    client, send, sleeps = _scripted_client(
        script, policy=RetryPolicy(max_attempts=5, base_delay=0.1,
                                   max_delay=2.0),
    )
    assert client._call(send, idempotent=True).status == 200
    assert client.counters()["attempts"] == 3
    assert client.counters()["retries"] == 2
    assert sleeps[0] == 0.25  # the server's hint, verbatim
    assert 0.0 <= sleeps[1] <= 0.2  # full jitter on attempt 2


def test_non_retryable_status_returns_immediately():
    client, send, sleeps = _scripted_client([_response(422)])
    assert client._call(send, idempotent=True).status == 422
    assert client.counters()["attempts"] == 1 and not sleeps


def test_ambiguous_500_retries_only_under_idempotency():
    client, send, _ = _scripted_client([_response(500), _response(200)])
    assert client._call(send, idempotent=True).status == 200
    client2, send2, _ = _scripted_client([_response(500), _response(200)])
    assert client2._call(send2, idempotent=False).status == 500


def test_connection_errors_retry_then_exhaust():
    script = [ConnectionResetError("boom")] * 3
    client, send, _ = _scripted_client(
        script, policy=RetryPolicy(max_attempts=3, base_delay=0.0,
                                   max_delay=0.0),
    )
    with pytest.raises(RetriesExhausted) as info:
        client._call(send, idempotent=True)
    assert info.value.attempts == 3
    assert isinstance(info.value.last_error, ConnectionResetError)


def test_breaker_opens_during_retry_storm():
    script = [_response(503)] * 10
    client, send, _ = _scripted_client(
        script,
        policy=RetryPolicy(max_attempts=4, base_delay=0.0, max_delay=0.0),
        breaker=CircuitBreaker(threshold=2, cooldown=60.0, clock=FakeClock()),
    )
    with pytest.raises(CircuitOpenError):
        client._call(send, idempotent=True)
    assert client.counters()["breaker_opens"] == 1
    assert client.counters()["attempts"] == 2  # third call failed fast


def test_mutations_generate_distinct_deterministic_keys():
    a = ResilientClient("127.0.0.1", 1, seed=42)
    b = ResilientClient("127.0.0.1", 1, seed=42)
    keys_a = [a._new_key() for _ in range(3)]
    keys_b = [b._new_key() for _ in range(3)]
    assert keys_a == keys_b  # same seed -> same keys (replayable chaos)
    assert len(set(keys_a)) == 3


# ---------------------------------------------------------------------------
# NetResponse / NetRequestError plumbing
# ---------------------------------------------------------------------------
def test_parse_retry_after_is_case_insensitive_and_defensive():
    assert parse_retry_after({"retry-after": "2"}) == 2.0
    assert parse_retry_after({"Retry-After": "1.5"}) == 1.5
    assert parse_retry_after({"Retry-After": "soon"}) is None
    assert parse_retry_after({"Retry-After": "-1"}) is None
    assert parse_retry_after({}) is None


def test_net_request_error_carries_structured_fields():
    body = json.dumps(
        {"error": {"status": 503, "kind": "storage-unavailable",
                   "detail": "degraded"}}
    ).encode()
    response = _response(503, {"Retry-After": "3"}, body)
    error = NetRequestError("/query", response)
    assert error.status == 503
    assert error.kind == "storage-unavailable"
    assert error.retry_after == 3.0
    assert error.path == "/query"
    assert error.response is response


# ---------------------------------------------------------------------------
# IdempotencyIndex
# ---------------------------------------------------------------------------
def test_reserve_fulfil_replay_protocol():
    index = IdempotencyIndex()
    assert index.reserve("k").state == "fresh"
    assert index.reserve("k").state == "in-flight"
    index.fulfil("k", 200, b'{"ok":1}', "application/json")
    replay = index.reserve("k")
    assert replay.state == "replay"
    assert (replay.status, replay.body) == (200, b'{"ok":1}')
    assert index.counters() == {
        "fresh": 1, "replayed": 1, "conflicts": 1, "size": 1,
    }


def test_abandon_releases_only_inflight_reservations():
    index = IdempotencyIndex()
    index.reserve("k")
    index.abandon("k")
    assert index.reserve("k").state == "fresh"  # retry may execute
    index.fulfil("k", 200, b"{}", "application/json")
    index.abandon("k")  # settled entries are not abandonable
    assert index.reserve("k").state == "replay"


def test_eviction_spares_inflight_entries():
    index = IdempotencyIndex(capacity=2)
    index.reserve("a")
    index.fulfil("a", 200, b"{}", "application/json")
    index.reserve("b")  # in flight
    index.reserve("c")  # in flight; over capacity -> settled "a" evicted
    assert index.counters()["size"] == 2
    assert index.reserve("a").state == "fresh"  # evicted, re-executes
    assert index.reserve("b").state == "in-flight"  # never evicted
    assert index.reserve("c").state == "in-flight"


def test_reconfigure_shrinks_the_window():
    index = IdempotencyIndex(capacity=8)
    for name in "abcdef":
        index.reserve(name)
        index.fulfil(name, 200, b"{}", "application/json")
    index.reconfigure(2)
    assert index.counters()["size"] == 2
    assert index.reserve("f").state == "replay"  # newest survive
    with pytest.raises(ValueError, match=">= 1"):
        index.reconfigure(0)
