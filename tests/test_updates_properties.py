"""Metamorphic (hypothesis) properties of incremental skyline maintenance.

Three relations that must hold for *any* data and *any* implicit
preference, each relating a maintained state to an independently
computed one:

1. **insert-then-delete is identity** - absorbing a row and then
   deleting it returns the maintained skyline to exactly its previous
   membership;
2. **N single inserts equal one rebuild** - feeding rows one by one
   through the maintainer lands on the same skyline as computing it
   from scratch over the extended dataset;
3. **deleting a non-skyline point never changes the skyline** - a
   dominated point disqualifies nothing, so removing it is invisible.

Small integer numeric values and small nominal domains force the tie
and duplicate regimes where maintenance bugs hide (shared scores,
incomparable unlisted values, exclusive-vs-shared dominance regions).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.attributes import Schema, nominal, numeric_min
from repro.core.dataset import Dataset
from repro.core.preferences import ImplicitPreference, Preference
from repro.engine import available_backends
from repro.updates import DynamicDataset, IncrementalSkyline

DOMAIN_A = ("a0", "a1", "a2", "a3")
DOMAIN_B = ("b0", "b1", "b2")

SCHEMA = Schema(
    [
        numeric_min("x"),
        numeric_min("y"),
        nominal("A", DOMAIN_A),
        nominal("B", DOMAIN_B),
    ]
)

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

row_strategy = st.tuples(
    st.integers(0, 4),
    st.integers(0, 4),
    st.sampled_from(DOMAIN_A),
    st.sampled_from(DOMAIN_B),
)

rows = st.lists(row_strategy, min_size=1, max_size=30)


@st.composite
def chains(draw, domain):
    """A duplicate-free preference chain over ``domain``."""
    length = draw(st.integers(0, len(domain)))
    return tuple(draw(st.permutations(list(domain))))[:length]


@st.composite
def preferences(draw):
    """A random implicit preference over both nominal dimensions."""
    return Preference(
        {
            "A": ImplicitPreference(draw(chains(DOMAIN_A))),
            "B": ImplicitPreference(draw(chains(DOMAIN_B))),
        }
    )


def maintainer_for(base_rows, pref, backend):
    data = DynamicDataset(SCHEMA, base_rows)
    return data, IncrementalSkyline(data, pref, backend=backend)


@pytest.mark.parametrize("backend", available_backends())
class TestMetamorphic:
    @SETTINGS
    @given(base=rows, extra=row_strategy, pref=preferences())
    def test_insert_then_delete_is_identity(self, backend, base, extra, pref):
        data, sky = maintainer_for(base, pref, backend)
        before = sky.ids
        pid = data.append([extra])[0]
        insert_effect = sky.insert(pid)
        data.delete([pid])
        delete_effect = sky.delete(pid)
        assert sky.ids == before
        # The two effects must also be inverse in membership terms.
        assert insert_effect.changed == delete_effect.changed

    @SETTINGS
    @given(base=rows, extras=st.lists(row_strategy, max_size=10),
           pref=preferences())
    def test_n_inserts_equal_one_rebuild(self, backend, base, extras, pref):
        data, sky = maintainer_for(base, pref, backend)
        for row in extras:
            sky.insert(data.append([row])[0])
        extended = Dataset(SCHEMA, list(base) + list(extras))
        fresh = IncrementalSkyline(
            DynamicDataset.from_dataset(extended), pref, backend=backend
        )
        assert sky.ids == fresh.ids
        # ... and equal the maintainer's own from-scratch rebuild.
        assert sky.ids == sky.rebuild()

    @SETTINGS
    @given(base=rows, pref=preferences())
    def test_delete_of_non_skyline_point_changes_nothing(
        self, backend, base, pref
    ):
        data, sky = maintainer_for(base, pref, backend)
        outside = [i for i in data.ids if i not in sky]
        if not outside:
            return  # every point is in the skyline; nothing to test
        before = sky.ids
        victim = outside[len(outside) // 2]
        data.delete([victim])
        effect = sky.delete(victim)
        assert not effect.changed
        assert sky.ids == before
        assert sky.ids == sky.rebuild()
