"""Unit tests for strict partial orders (Section 2's model)."""

import pytest

from repro.core.orders import PartialOrder, transitive_closure
from repro.exceptions import ConflictError, PreferenceError


class TestTransitiveClosure:
    def test_chain_closes(self):
        closed = transitive_closure([("a", "b"), ("b", "c")])
        assert ("a", "c") in closed
        assert len(closed) == 3

    def test_empty(self):
        assert transitive_closure([]) == frozenset()

    def test_diamond(self):
        closed = transitive_closure(
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        )
        assert ("a", "d") in closed
        assert len(closed) == 5


class TestPartialOrderValidation:
    def test_reflexive_pair_rejected(self):
        with pytest.raises(PreferenceError):
            PartialOrder([("a", "a")])

    def test_direct_cycle_rejected(self):
        with pytest.raises(PreferenceError):
            PartialOrder([("a", "b"), ("b", "a")])

    def test_indirect_cycle_rejected(self):
        with pytest.raises(PreferenceError):
            PartialOrder([("a", "b"), ("b", "c"), ("c", "a")])


class TestPartialOrderQueries:
    def test_better_uses_closure(self):
        r = PartialOrder([("T", "M"), ("M", "H")])
        assert r.better("T", "H")
        assert not r.better("H", "T")

    def test_better_or_equal(self):
        r = PartialOrder([("T", "M")])
        assert r.better_or_equal("T", "T")
        assert r.better_or_equal("T", "M")
        assert not r.better_or_equal("M", "T")

    def test_comparable(self):
        r = PartialOrder([("T", "M")])
        assert r.comparable("T", "M")
        assert r.comparable("M", "T")
        assert r.comparable("T", "T")
        assert not r.comparable("T", "H")

    def test_values(self):
        r = PartialOrder([("T", "M"), ("M", "H")])
        assert r.values() == {"T", "M", "H"}

    def test_is_total_over(self):
        total = PartialOrder.from_chain(["a", "b", "c"])
        assert total.is_total_over(["a", "b", "c"])
        partial = PartialOrder([("a", "b")])
        assert not partial.is_total_over(["a", "b", "c"])

    def test_from_chain_orders_all_pairs(self):
        r = PartialOrder.from_chain([1, 2, 3])
        assert r.pairs == frozenset({(1, 2), (1, 3), (2, 3)})

    def test_empty_constructor(self):
        assert len(PartialOrder.empty()) == 0

    def test_container_protocol(self):
        r = PartialOrder([("a", "b")])
        assert ("a", "b") in r
        assert ("b", "a") not in r
        assert set(iter(r)) == {("a", "b")}


class TestRefinementAndConflict:
    def test_refines_superset(self):
        weak = PartialOrder([("T", "M")])
        strong = PartialOrder([("T", "M"), ("H", "M")])
        assert strong.refines(weak)
        assert not weak.refines(strong)

    def test_refines_is_reflexive(self):
        r = PartialOrder([("T", "M")])
        assert r.refines(r)
        assert not r.stronger_than(r)

    def test_stronger_than(self):
        weak = PartialOrder([("T", "M")])
        strong = PartialOrder([("T", "M"), ("H", "M")])
        assert strong.stronger_than(weak)

    def test_conflict_free_paper_example(self):
        # P("M < *") and P("H < *") over {T, H, M} share (M,H)/(H,M).
        r1 = PartialOrder([("M", "H"), ("M", "T")])
        r2 = PartialOrder([("H", "M"), ("H", "T")])
        assert not r1.conflict_free(r2)

    def test_conflict_free_disjoint(self):
        r1 = PartialOrder([("a", "b")])
        r2 = PartialOrder([("c", "d")])
        assert r1.conflict_free(r2)

    def test_union_of_conflict_free(self):
        r1 = PartialOrder([("a", "b")])
        r2 = PartialOrder([("b", "c")])
        union = r1.union(r2)
        assert union.better("a", "c")

    def test_union_conflict_raises(self):
        r1 = PartialOrder([("a", "b")])
        r2 = PartialOrder([("b", "a")])
        with pytest.raises(ConflictError):
            r1.union(r2)

    def test_union_indirect_cycle_raises(self):
        r1 = PartialOrder([("a", "b"), ("b", "c")])
        r2 = PartialOrder([("c", "a")])
        with pytest.raises(ConflictError):
            r1.union(r2)

    def test_minus(self):
        r1 = PartialOrder([("a", "b"), ("c", "d")])
        r2 = PartialOrder([("a", "b")])
        assert r1.minus(r2) == frozenset({("c", "d")})

    def test_equality_and_hash(self):
        assert PartialOrder([("a", "b")]) == PartialOrder([("a", "b")])
        assert hash(PartialOrder([("a", "b")])) == hash(
            PartialOrder([("a", "b")])
        )
