"""Partition-skyline-merge executor: equivalence, strategies, modes.

The heart of the file is the hypothesis property test asserting that
the parallel route returns the *identical* skyline to the reference
backend across partition counts and strategies - including datasets
dense in ties, duplicates and distinct unlisted nominal values (the
paper's incomparability subtlety, which the merge sweep must not
collapse).  Execution modes (serial / thread / shared-memory process)
and the registry integration are covered separately.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.attributes import Schema, nominal, numeric_min
from repro.core.dataset import Dataset
from repro.core.preferences import ImplicitPreference, Preference
from repro.core.skyline import skyline
from repro.datagen.generator import SyntheticConfig, generate
from repro.engine import (
    ParallelBackend,
    available_backends,
    get_backend,
    make_parallel_backend,
    numpy_available,
    registered_backends,
)
from repro.engine.parallel import (
    EXECUTION_MODES,
    PARTITION_STRATEGIES,
    entropy_partitions,
    fork_available,
    partition_ids,
    round_robin_partitions,
    score_sorted_partitions,
)
from repro.exceptions import EngineError

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

DOMAIN_A = ("a0", "a1", "a2", "a3")
DOMAIN_B = ("b0", "b1", "b2")

SCHEMA = Schema(
    [
        numeric_min("x"),
        numeric_min("y"),
        nominal("A", DOMAIN_A),
        nominal("B", DOMAIN_B),
    ]
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Small integer coordinates force ties and duplicates; small domains
# force dense preference interactions - the regimes where a wrong merge
# (e.g. one treating equal-ranked unlisted values as comparable) would
# drop or keep the wrong points.
rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 3),
        st.sampled_from(DOMAIN_A),
        st.sampled_from(DOMAIN_B),
    ),
    min_size=1,
    max_size=40,
)

chain_a = st.lists(
    st.sampled_from(DOMAIN_A), unique=True, min_size=0, max_size=4
)
chain_b = st.lists(
    st.sampled_from(DOMAIN_B), unique=True, min_size=0, max_size=3
)


@st.composite
def preferences(draw):
    """A random implicit preference over the two nominal attributes."""
    pref = {}
    listed_a = draw(chain_a)
    listed_b = draw(chain_b)
    if listed_a:
        pref["A"] = ImplicitPreference(tuple(listed_a))
    if listed_b:
        pref["B"] = ImplicitPreference(tuple(listed_b))
    return Preference(pref)


class TestPartitionMergeEquivalence:
    """The satellite property test: parallel == reference, always."""

    @SETTINGS
    @given(
        rows=rows_strategy,
        pref=preferences(),
        partitions=st.integers(1, 6),
        strategy=st.sampled_from(PARTITION_STRATEGIES),
    )
    def test_matches_reference_across_counts_and_strategies(
        self, rows, pref, partitions, strategy
    ):
        dataset = Dataset(SCHEMA, rows)
        expected = skyline(dataset, pref, backend="python").ids
        backend = make_parallel_backend(
            "python",
            workers=2,
            partitions=partitions,
            strategy=strategy,
            mode="serial",
            min_rows=0,
        )
        assert skyline(dataset, pref, backend=backend).ids == expected

    @needs_numpy
    @SETTINGS
    @given(
        rows=rows_strategy,
        pref=preferences(),
        partitions=st.integers(2, 5),
    )
    def test_numpy_inner_matches_reference(self, rows, pref, partitions):
        dataset = Dataset(SCHEMA, rows)
        expected = skyline(dataset, pref, backend="python").ids
        backend = make_parallel_backend(
            "numpy",
            workers=2,
            partitions=partitions,
            strategy="sorted",
            mode="serial",
            min_rows=0,
        )
        assert skyline(dataset, pref, backend=backend).ids == expected


@pytest.fixture(scope="module")
def synthetic():
    """A mid-size workload where partitioning actually kicks in."""
    return generate(
        SyntheticConfig(
            num_points=2500,
            num_numeric=2,
            num_nominal=2,
            cardinality=5,
            distribution="anticorrelated",
            seed=17,
        )
    )


def full_order_preference(dataset) -> Preference:
    """Full-order chains on every nominal attribute."""
    return Preference(
        {
            name: ImplicitPreference(dataset.schema.spec(name).domain)
            for name in dataset.schema.nominal_names
        }
    )


class TestExecutionModes:
    """Thread / process / serial all return the reference answer."""

    def reference(self, dataset, pref):
        return skyline(dataset, pref, backend="python").ids

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_thread_and_serial(self, synthetic, mode):
        pref = full_order_preference(synthetic)
        backend = make_parallel_backend(
            workers=3, partitions=3, mode=mode, min_rows=0
        )
        assert (
            skyline(synthetic, pref, backend=backend).ids
            == self.reference(synthetic, pref)
        )

    @needs_numpy
    @pytest.mark.skipif(
        not fork_available(), reason="no fork start method on this platform"
    )
    def test_shared_memory_process_pool(self, synthetic):
        pref = full_order_preference(synthetic)
        backend = make_parallel_backend(
            "numpy", workers=2, partitions=3, mode="process", min_rows=0
        )
        assert (
            skyline(synthetic, pref, backend=backend).ids
            == self.reference(synthetic, pref)
        )

    def test_process_mode_falls_back_to_threads_for_python_inner(self):
        backend = make_parallel_backend("python", workers=2, mode="process")
        assert backend.resolved_mode() == "thread"

    def test_small_inputs_skip_partitioning(self, synthetic):
        # With min_rows above the dataset size the inner kernel runs
        # directly - same answer, and the member *order* of the inner
        # backend is preserved (the partitioned path only guarantees
        # the set).
        pref = full_order_preference(synthetic)
        inner = get_backend("python")
        backend = make_parallel_backend(
            "python", workers=2, partitions=4, min_rows=10**9
        )
        table_ids = skyline(synthetic, pref, backend=backend).ids
        assert table_ids == skyline(synthetic, pref, backend=inner).ids


class TestPartitioning:
    """Partitions are disjoint, covering, and respect the strategy."""

    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    @pytest.mark.parametrize("k", [1, 2, 3, 7])
    def test_disjoint_cover(self, synthetic, strategy, k):
        backend = get_backend("python")
        from repro.core.dominance import RankTable

        table = RankTable.compile(synthetic.schema, None)
        ctx = backend.prepare(synthetic.canonical_rows, table)
        ids = list(synthetic.ids)
        parts = partition_ids(backend, ctx, ids, k, strategy, table=table)
        assert len(parts) <= k
        flat = [i for part in parts for i in part]
        assert sorted(flat) == ids
        assert all(part for part in parts)

    def test_round_robin_stripes(self):
        parts = round_robin_partitions(range(7), 3)
        assert [list(part) for part in parts] == [
            [0, 3, 6],
            [1, 4],
            [2, 5],
        ]

    def test_round_robin_drops_empty_parts(self):
        parts = round_robin_partitions([1, 2], 4)
        assert [list(part) for part in parts] == [[1], [2]]

    def test_sorted_deals_strong_points_to_every_part(self, synthetic):
        from repro.core.dominance import RankTable

        backend = get_backend("python")
        table = RankTable.compile(synthetic.schema, None)
        ctx = backend.prepare(synthetic.canonical_rows, table)
        ids = list(synthetic.ids)
        parts = score_sorted_partitions(backend, ctx, ids, 4)
        # The four best-scored points land in four different parts.
        best = backend.sort_by_score(ctx, ids)[:4]
        holders = [
            next(n for n, part in enumerate(parts) if i in set(part))
            for i in best
        ]
        assert len(set(holders)) == 4

    def test_entropy_partitions_cover(self, synthetic):
        from repro.core.dominance import RankTable

        backend = get_backend("python")
        table = RankTable.compile(synthetic.schema, None)
        ctx = backend.prepare(synthetic.canonical_rows, table)
        ids = list(synthetic.ids)
        parts = entropy_partitions(backend, ctx, ids, 5, table)
        assert sorted(i for part in parts for i in part) == ids

    def test_unknown_strategy_rejected(self, synthetic):
        backend = get_backend("python")
        with pytest.raises(EngineError):
            partition_ids(backend, None, [1, 2], 2, "zigzag")


class TestRegistryIntegration:
    """The 'parallel' name composes with the registry like any backend."""

    def test_registered_and_available(self):
        assert "parallel" in registered_backends()
        assert "parallel" in available_backends()

    def test_default_instance_wraps_best_available_inner(self):
        backend = get_backend("parallel")
        assert isinstance(backend, ParallelBackend)
        expected = "numpy" if numpy_available() else "python"
        assert backend.inner.name == expected
        assert backend.vectorized == backend.inner.vectorized

    def test_nesting_rejected(self):
        with pytest.raises(EngineError):
            ParallelBackend("parallel")

    def test_validation(self):
        with pytest.raises(EngineError):
            make_parallel_backend(workers=0)
        with pytest.raises(EngineError):
            make_parallel_backend(partitions=0)
        with pytest.raises(EngineError):
            make_parallel_backend(strategy="bogus")
        with pytest.raises(EngineError):
            make_parallel_backend(mode="bogus")
        with pytest.raises(EngineError):
            make_parallel_backend(min_rows=-1)

    def test_modes_and_strategies_enumerated(self):
        assert set(EXECUTION_MODES) == {"auto", "serial", "thread", "process"}
        assert set(PARTITION_STRATEGIES) == {
            "round-robin",
            "sorted",
            "entropy",
        }

    def test_delegating_kernels_match_inner(self, synthetic):
        from repro.core.dominance import RankTable

        pref = full_order_preference(synthetic)
        table = RankTable.compile(synthetic.schema, pref)
        inner = get_backend("python")
        wrapped = make_parallel_backend("python", workers=2)
        ictx = inner.prepare(synthetic.canonical_rows, table)
        wctx = wrapped.prepare(synthetic.canonical_rows, table)
        ids = list(synthetic.ids)[:50]
        assert wrapped.scores(wctx, ids) == inner.scores(ictx, ids)
        assert wrapped.sort_by_score(wctx, ids) == inner.sort_by_score(
            ictx, ids
        )
        assert wrapped.dominates_mask(wctx, 0, ids) == inner.dominates_mask(
            ictx, 0, ids
        )
        assert wrapped.compare_many(wctx, 0, ids) == inner.compare_many(
            ictx, 0, ids
        )
        assert wrapped.dim_ranks(wctx, ids, 0) == inner.dim_ranks(
            ictx, ids, 0
        )
