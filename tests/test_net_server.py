"""End to end over real sockets: wire answers == in-process answers.

The server is only correct if a query over HTTP returns byte-for-byte
the same skyline the service returns in process, at the same data
version - including after inserts, deletes and compaction travelled
over the wire.  A twin service receiving the identical call sequence
in process is the oracle.  Also hosts the driver's empty/one-sample
latency regression tests (the ``percentile``/``latency_summary``
contract).
"""

from __future__ import annotations

import json

import pytest

from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
)
from repro.datagen.queries import generate_preferences
from repro.net import NetClient, ServerConfig, ServerThread, parse_listen
from repro.serve.driver import (
    WorkloadReport,
    latency_summary,
    percentile,
    replay,
)
from repro.serve.service import SkylineService


def make_service(seed: int = 3, points: int = 200) -> SkylineService:
    dataset = generate(
        SyntheticConfig(
            num_points=points, num_numeric=2, num_nominal=2,
            cardinality=4, seed=seed,
        )
    )
    return SkylineService(
        dataset, frequent_value_template(dataset, 1), cache_capacity=32
    )


@pytest.fixture()
def twins():
    """(served service, in-process oracle) built identically."""
    return make_service(), make_service()


def test_wire_queries_equal_in_process_queries(twins):
    served, oracle = twins
    prefs = [None] + generate_preferences(
        oracle.dataset, 3, 12, template=oracle.template, seed=9
    )
    with ServerThread(served, ServerConfig(port=0, access_log=False)) as t:
        with NetClient(t.host, t.port) as client:
            for pref in prefs:
                expected = oracle.query(pref, use_cache=False)
                response = client.query(pref, use_cache=False)
                assert response.status == 200
                assert tuple(response.json["ids"]) == expected.ids
                assert response.json["version"] == expected.version
                assert response.json["route"] == expected.route


def test_wire_batch_equals_in_process_batch(twins):
    served, oracle = twins
    prefs = generate_preferences(
        oracle.dataset, 2, 10, template=oracle.template, seed=4
    )
    prefs = prefs + prefs[:3]  # duplicates exercise batch dedup
    with ServerThread(served, ServerConfig(port=0, access_log=False)) as t:
        with NetClient(t.host, t.port) as client:
            response = client.batch(prefs, use_cache=False)
    expected = oracle.submit_batch(prefs, use_cache=False)
    assert response.status == 200
    wire_ids = [tuple(r["ids"]) for r in response.json["results"]]
    assert wire_ids == [r.ids for r in expected.results]
    assert response.json["unique_queries"] == expected.unique_queries
    assert response.json["duplicate_queries"] == expected.duplicate_queries


def test_wire_mutations_equal_in_process_mutations(twins):
    served, oracle = twins
    rows = [oracle.dataset.row(i) for i in range(5)]
    prefs = generate_preferences(
        oracle.dataset, 2, 6, template=oracle.template, seed=8
    )
    with ServerThread(served, ServerConfig(port=0, access_log=False)) as t:
        with NetClient(t.host, t.port) as client:
            inserted = client.insert(rows)
            expected_insert = oracle.insert_rows(rows)
            assert inserted.status == 200
            assert (
                tuple(inserted.json["point_ids"])
                == expected_insert.point_ids
            )
            assert inserted.json["version"] == expected_insert.version

            victims = list(expected_insert.point_ids[:2]) + [0, 3]
            deleted = client.delete(victims)
            expected_delete = oracle.delete_rows(victims)
            assert deleted.status == 200
            assert deleted.json["version"] == expected_delete.version

            compacted = client.compact()
            remap = oracle.compact()
            assert compacted.status == 200
            assert compacted.json["remapped"] == len(remap)
            assert compacted.json["version"] == oracle.version

            for pref in prefs:
                expected = oracle.query(pref, use_cache=False)
                response = client.query(pref, use_cache=False)
                assert tuple(response.json["ids"]) == expected.ids
                assert response.json["version"] == expected.version


def test_wire_cache_semantics_match_service(twins):
    served, oracle = twins
    pref = generate_preferences(
        oracle.dataset, 2, 1, template=oracle.template, seed=2
    )[0]
    with ServerThread(served, ServerConfig(port=0, access_log=False)) as t:
        with NetClient(t.host, t.port) as client:
            first = client.query(pref)
            second = client.query(pref)
    assert first.json["cached"] is False
    assert second.json["route"] == "cache"
    assert second.json["cached"] is True
    assert tuple(second.json["ids"]) == tuple(first.json["ids"])


def test_semantic_errors_map_to_422(twins):
    served, _ = twins
    with ServerThread(served, ServerConfig(port=0, access_log=False)) as t:
        with NetClient(t.host, t.port) as client:
            bad_route = client.query(None, route="bogus")
            assert bad_route.status == 422
            assert "bogus" in bad_route.json["error"]["detail"]

            bad_row = client.insert([[1.0, "too-short"]])
            assert bad_row.status == 422

            unknown_value = client.request(
                "POST", "/query",
                {"preference": {"no_such_attribute": ["x"]}},
            )
            assert unknown_value.status == 422


def test_forced_route_travels_over_the_wire(twins):
    served, oracle = twins
    with ServerThread(served, ServerConfig(port=0, access_log=False)) as t:
        with NetClient(t.host, t.port) as client:
            for route in ("ipo", "mdc"):
                response = client.query(None, use_cache=False, route=route)
                assert response.status == 200
                assert response.json["route"] == route
                expected = oracle.query(None, use_cache=False, route=route)
                assert tuple(response.json["ids"]) == expected.ids


def test_concurrent_wire_clients_get_consistent_answers(twins):
    from concurrent.futures import ThreadPoolExecutor

    served, oracle = twins
    prefs = generate_preferences(
        oracle.dataset, 2, 8, template=oracle.template, seed=6
    )
    expected = {
        id(p): oracle.query(p, use_cache=False).ids for p in prefs
    }
    config = ServerConfig(port=0, max_inflight=4, access_log=False)
    with ServerThread(served, config) as t:

        def worker(pref):
            with NetClient(t.host, t.port) as client:
                return client.query_ids(pref, use_cache=False)

        with ThreadPoolExecutor(max_workers=6) as pool:
            answers = list(pool.map(worker, prefs * 3))
    for pref, ids in zip(prefs * 3, answers):
        assert ids == expected[id(pref)]


def test_parse_listen_specs():
    assert parse_listen("127.0.0.1:8080") == ("127.0.0.1", 8080)
    assert parse_listen(":0") == ("127.0.0.1", 0)
    assert parse_listen("0.0.0.0:9999") == ("0.0.0.0", 9999)
    for bad in ("8080", "host:", "host:abc", "host:70000"):
        with pytest.raises(ValueError):
            parse_listen(bad)


# ---------------------------------------------------------------------------
# driver latency regression (the empty/one-sample percentile gap)
# ---------------------------------------------------------------------------
def test_percentile_still_refuses_empty_samples():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_latency_summary_of_empty_sample_is_all_none():
    summary = latency_summary([])
    assert summary == {
        "mean": None, "p50": None, "p95": None, "p99": None, "max": None,
    }


def test_latency_summary_of_one_sample_is_that_sample():
    summary = latency_summary([4.2])
    assert all(value == 4.2 for value in summary.values())


def test_empty_replay_reports_null_latencies_not_zero():
    service = make_service(points=60)
    report = replay(service, [], name="empty")
    assert report.queries == 0
    assert all(value is None for value in report.latencies_ms.values())
    # The rendering paths must survive the empty report...
    assert " - " in report.render() or "-" in report.render()
    payload = report.as_dict()
    assert payload["latency_ms"]["p50"] is None
    json.dumps(payload)  # ... and it must stay JSON-serializable.


def test_single_query_replay_is_degenerate_but_honest():
    service = make_service(points=60)
    report = replay(service, [None], name="one", concurrency=1)
    lat = report.latencies_ms
    assert lat["p50"] == lat["p95"] == lat["p99"] == lat["max"]
    assert lat["mean"] == lat["p50"]
    assert lat["p50"] is not None and lat["p50"] > 0.0


def test_workload_report_round_trips_through_json():
    report = WorkloadReport(
        name="x", queries=0, concurrency=1, total_seconds=0.0,
        throughput_qps=0.0, latencies_ms=latency_summary([]),
        route_counts={}, cache=make_service(points=60).stats().cache,
    )
    decoded = json.loads(json.dumps(report.as_dict()))
    assert decoded["latency_ms"]["max"] is None
