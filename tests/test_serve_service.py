"""Serving layer end to end: equivalence, caching, driver, CLI."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.preferences import Preference
from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
)
from repro.datagen.queries import generate_preferences
from repro.exceptions import ReproError
from repro.serve import (
    SkylineService,
    WORKLOADS,
    churn_workload,
    hot_workload,
    percentile,
    replay,
)


@pytest.fixture(scope="module")
def dataset():
    return generate(
        SyntheticConfig(
            num_points=300,
            num_numeric=2,
            num_nominal=2,
            cardinality=5,
            seed=11,
        )
    )


@pytest.fixture(scope="module")
def template(dataset):
    return frequent_value_template(dataset)


@pytest.fixture(scope="module")
def service(dataset, template):
    return SkylineService(dataset, template, cache_capacity=32)


class TestRouteEquivalence:
    """Every planner route returns the identical skyline (Theorem 1)."""

    def test_all_routes_agree_on_randomized_preferences(self, service):
        # The bitset scan route rides along wherever NumPy is present
        # (its vectorized tier); the structure routes are always built.
        expected = {"ipo", "adaptive", "mdc", "kernel"}
        if service.bitset is not None:
            expected.add("bitset")
        assert set(service.available_routes()) == expected
        preferences = generate_preferences(
            service.dataset, 2, 12, template=service.template, seed=5
        ) + generate_preferences(
            service.dataset, 4, 6, template=service.template, seed=6
        ) + [None, Preference.empty()]
        for pref in preferences:
            answers = {
                route: service.query(pref, use_cache=False, route=route).ids
                for route in service.available_routes()
            }
            assert len(set(answers.values())) == 1, (
                f"routes disagree for {pref}: "
                f"{ {r: len(ids) for r, ids in answers.items()} }"
            )

    def test_planner_choice_matches_forced_answer(self, service):
        for pref in generate_preferences(
            service.dataset, 3, 5, template=service.template, seed=8
        ):
            planned = service.query(pref, use_cache=False)
            forced = service.query(pref, use_cache=False, route="kernel")
            assert planned.ids == forced.ids

    def test_ids_are_sorted_tuples(self, service):
        result = service.query(None, use_cache=False)
        assert isinstance(result.ids, tuple)
        assert list(result.ids) == sorted(result.ids)


class TestServiceCaching:
    def test_second_identical_query_hits(self, dataset, template):
        service = SkylineService(dataset, template, cache_capacity=8)
        pref = Preference({"nom0": template["nom0"].choices})
        first = service.query(pref)
        second = service.query(pref)
        assert not first.cached and second.cached
        assert second.route == "cache"
        assert first.ids == second.ids

    def test_semantically_equal_spellings_hit(self, dataset, template):
        service = SkylineService(dataset, template, cache_capacity=8)
        # Inherit the template chain vs spell it out: same partial order.
        first = service.query(Preference.empty())
        spelled = Preference(
            {name: pref for name, pref in template.items()}
        )
        second = service.query(spelled)
        assert second.cached
        assert first.ids == second.ids

    def test_use_cache_false_bypasses(self, dataset, template):
        service = SkylineService(dataset, template, cache_capacity=8)
        service.query(None)
        result = service.query(None, use_cache=False)
        assert not result.cached
        stats = service.stats()
        assert stats.cache.bypasses == 1

    def test_forced_route_is_never_served_from_cache(self, dataset, template):
        service = SkylineService(dataset, template, cache_capacity=8)
        warm = service.query(None)          # populates the cache
        forced = service.query(None, route="kernel")
        assert not forced.cached and forced.route == "kernel"
        assert forced.ids == warm.ids
        # ... but the forced answer was stored for planned queries.
        assert service.query(None).cached

    def test_config_forced_route_skips_cache_and_signals(
        self, dataset, template
    ):
        from repro.serve import PlannerConfig

        service = SkylineService(
            dataset,
            template,
            cache_capacity=8,
            planner_config=PlannerConfig(forced_route="mdc"),
        )
        first = service.query(None)
        second = service.query(None)
        assert first.route == second.route == "mdc"
        assert not second.cached
        assert "forced" in second.reason

    def test_template_skyline_size_with_only_mdc(self, dataset, template):
        service = SkylineService(
            dataset,
            template,
            with_tree=False,
            with_adaptive=False,
            cache_capacity=0,
        )
        assert service.template_skyline_size == len(service.mdc.skyline_ids)
        assert service.template_skyline_size > 0

    def test_unknown_route_raises(self, service):
        with pytest.raises(ReproError):
            service.query(None, use_cache=False, route="teleport")

    def test_disabled_route_raises(self, dataset, template):
        service = SkylineService(
            dataset, template, with_tree=False, cache_capacity=0
        )
        with pytest.raises(ReproError):
            service.query(None, route="ipo")

    def test_stats_track_queries(self, dataset, template):
        service = SkylineService(dataset, template, cache_capacity=8)
        service.query(None)
        service.query(None)
        stats = service.stats()
        assert stats.queries == 2
        assert stats.route_counts["cache"] == 1


class TestDriver:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 95) == 4.0
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        with pytest.raises(ValueError):
            percentile(values, 150)

    def test_percentile_tail_not_under_reported(self):
        # Regression: on small samples the nearest rank must round *up*
        # (ceil), otherwise p99 collapses onto lower observations.
        values = list(range(1, 11))        # n = 10
        assert percentile(values, 99) == 10     # ceil(9.9) = 10 -> index 9
        assert percentile(values, 91) == 10
        assert percentile(values, 90) == 9
        assert percentile([7.0], 99) == 7.0
        # A single outlier at the tail must surface at p99 for n = 100.
        sample = [1.0] * 99 + [50.0]
        assert percentile(sample, 99) == 1.0    # rank 99 of 100
        assert percentile(sample, 100) == 50.0

    def test_percentile_empty_sequence_raises_value_error(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_replay_reports_are_complete(self, dataset, template):
        service = SkylineService(dataset, template, cache_capacity=16)
        prefs = hot_workload(
            dataset, template, queries=40, order=2, distinct=4, seed=1
        )
        report = replay(service, prefs, name="hot", concurrency=4)
        assert report.queries == 40
        assert report.throughput_qps > 0
        for key in ("mean", "p50", "p95", "p99", "max"):
            assert report.latencies_ms[key] >= 0
        assert report.latencies_ms["p50"] <= report.latencies_ms["p99"]
        assert sum(report.route_counts.values()) == 40
        assert report.cache.hit_rate > 0
        payload = report.as_dict()
        assert payload["workload"] == "hot"
        json.dumps(payload)  # must be serialisable as-is

    def test_replay_deltas_are_per_run(self, dataset, template):
        service = SkylineService(dataset, template, cache_capacity=16)
        prefs = hot_workload(
            dataset, template, queries=20, order=2, distinct=2, seed=2
        )
        first = replay(service, prefs, concurrency=2)
        second = replay(service, prefs, concurrency=2)
        assert first.queries == second.queries == 20
        # Second replay starts warm: everything hits.
        assert second.cache.hits == 20
        assert second.route_counts.get("cache") == 20

    def test_concurrent_equals_sequential(self, dataset, template):
        prefs = generate_preferences(
            dataset, 2, 16, template=template, seed=9
        )
        sequential = SkylineService(dataset, template, cache_capacity=16)
        concurrent = SkylineService(dataset, template, cache_capacity=16)
        replay(sequential, prefs, concurrency=1)
        replay(concurrent, prefs, concurrency=8)
        seq_ids = [sequential.query(p).ids for p in prefs]
        con_ids = [concurrent.query(p).ids for p in prefs]
        assert seq_ids == con_ids

    def test_invalid_concurrency(self, service):
        with pytest.raises(ValueError):
            replay(service, [], concurrency=0)


class TestWorkloads:
    def test_shapes_are_deterministic(self, dataset, template):
        for name, generator in WORKLOADS.items():
            a = generator(dataset, template, queries=12, seed=4)
            b = generator(dataset, template, queries=12, seed=4)
            assert a == b, f"workload {name!r} is not seed-deterministic"
            assert len(a) == 12

    def test_churn_defeats_lru_sequentially(self, dataset, template):
        service = SkylineService(dataset, template, cache_capacity=8)
        prefs = churn_workload(
            dataset, template, queries=60, order=3, cache_capacity=8, seed=3
        )
        report = replay(service, prefs, name="churn", concurrency=1)
        assert report.cache.hit_rate == 0.0
        assert report.cache.evictions > 0

    def test_aliased_pairs_share_canonical_keys(self, dataset, template):
        from repro.core.preferences import canonical_cache_key

        prefs = WORKLOADS["aliased"](
            dataset, template, queries=10, distinct=3, seed=5
        )
        keys = [
            canonical_cache_key(dataset.schema, p, template) for p in prefs
        ]
        # Consecutive pairs alias to the same key while at least one
        # pair differs as Preference objects (distinct spellings).
        assert all(keys[i] == keys[i + 1] for i in range(0, len(keys) - 1, 2))
        assert any(
            prefs[i] != prefs[i + 1] for i in range(0, len(prefs) - 1, 2)
        )


SERVE_CLI = [sys.executable, "-m", "repro.serve"]
REPO_ROOT = Path(__file__).resolve().parent.parent


def run_cli(*args: str) -> subprocess.CompletedProcess:
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        SERVE_CLI + list(args),
        capture_output=True,
        text=True,
        timeout=600,
        cwd=REPO_ROOT,
        env=env,
    )


class TestCLI:
    def test_selftest_passes(self):
        result = run_cli("--selftest")
        assert result.returncode == 0, result.stderr
        assert "selftest ok" in result.stdout

    def test_replay_reports_all_shapes(self, tmp_path):
        out = tmp_path / "serve.json"
        result = run_cli(
            "--points", "300", "--queries", "30", "--cardinality", "5",
            "--workloads", "hot,cold,churn", "--concurrency", "2",
            "--json", str(out),
        )
        assert result.returncode == 0, result.stderr
        for shape in ("hot", "cold", "churn"):
            assert shape in result.stdout
        payload = json.loads(out.read_text())
        assert len(payload["workloads"]) == 3
        hot = next(w for w in payload["workloads"] if w["workload"] == "hot")
        assert hot["cache"]["hit_rate"] > 0
        for report in payload["workloads"]:
            for key in ("p50", "p95", "p99"):
                assert key in report["latency_ms"]

    def test_unknown_workload_rejected(self):
        result = run_cli("--workloads", "lukewarm")
        assert result.returncode == 2
        assert "unknown workload" in result.stderr

    def test_selftest_honours_backend_flag(self):
        result = run_cli("--selftest", "--backend", "python")
        assert result.returncode == 0, result.stderr
        assert "backend: python" in result.stderr

    def test_selftest_rejects_forced_route(self):
        result = run_cli("--selftest", "--route", "kernel")
        assert result.returncode == 2
        assert "incompatible" in result.stderr
