"""Pinning tests: every worked example of the paper, verbatim.

Covers Table 1/2 (customers' skylines), Table 3 + Figure 2 (the IPO-tree
and its node payloads), Figure 1 / Theorem 2's worked merge, and
Example 1's queries QA-QD with the answers printed in the paper.
"""

import pytest

from repro.core.preferences import ImplicitPreference, Preference
from repro.core.skyline import skyline
from repro.ipo.tree import IPOTree

from tests.conftest import names_of


class TestTable2Customers:
    """Table 2: preference -> skyline for each customer."""

    @pytest.mark.parametrize(
        "who, pref, expected",
        [
            ("Alice", "T < M < *", {"a", "c"}),
            ("Bob", "", {"a", "c", "e", "f"}),
            ("Chris", "H < M < *", {"a", "c", "e"}),
            ("David", "H < M < T", {"a", "c", "e"}),
            ("Emily", "H < T < *", {"a", "c"}),
            ("Fred", "M < *", {"a", "c", "e", "f"}),
        ],
    )
    def test_customer(self, vacation_data, who, pref, expected):
        preference = (
            Preference({"Hotel-group": pref}) if pref else None
        )
        got = names_of(skyline(vacation_data, preference).ids)
        assert got == expected, who


class TestFigure1MergingExample:
    """Figure 1: SKY3 = (SKY1 ∩ SKY2) ∪ PSKY1 on Table 1's data."""

    def test_worked_merge(self, vacation_data):
        sky1 = names_of(
            skyline(vacation_data, Preference({"Hotel-group": "M < *"})).ids
        )
        sky2 = names_of(
            skyline(vacation_data, Preference({"Hotel-group": "H < *"})).ids
        )
        assert sky1 == {"a", "c", "e", "f"}
        assert sky2 == {"a", "c", "e"}
        psky1 = {
            name
            for name in sky1
            if vacation_data.value("abcdef".index(name), "Hotel-group") == "M"
        }
        assert psky1 == {"e", "f"}
        sky3 = (sky1 & sky2) | psky1
        assert sky3 == {"a", "c", "e", "f"}
        direct = names_of(
            skyline(
                vacation_data, Preference({"Hotel-group": "M < H < *"})
            ).ids
        )
        assert direct == sky3


@pytest.fixture(params=["direct", "mdc"])
def figure2_tree(request, two_nominal_data):
    return IPOTree.build(two_nominal_data, engine=request.param)


class TestFigure2Tree:
    """Figure 2: the IPO-tree over Table 3 with the empty template."""

    def test_root_skyline(self, figure2_tree):
        assert names_of(figure2_tree.skyline_ids) == {"a", "c", "d", "e", "f"}

    def test_tree_node_count(self, figure2_tree):
        # Root + (3 values + phi) for Hotel-group, each with
        # (3 values + phi) for Airline: 1 + 4 + 16 = 21 (nodes 1-21).
        assert figure2_tree.node_count() == 21

    def test_level2_disqualified_sets_empty(self, figure2_tree):
        """Nodes 2-5 of Figure 2 all carry A = {}."""
        for child in figure2_tree.root.children.values():
            assert child.disqualified == frozenset()
        assert figure2_tree.root.phi_child.disqualified == frozenset()

    def test_node6_payload(self, figure2_tree):
        """Node 6 ("T < *, G < *") has A = {d, e, f}."""
        hotel_t = figure2_tree.root.children[0]  # T has value id 0
        node6 = hotel_t.children[0]  # G has value id 0
        assert names_of(node6.disqualified) == {"d", "e", "f"}

    def test_node14_payload(self, figure2_tree, two_nominal_data):
        """Node under M < * labelled G < * has A = {d} (used by QB)."""
        m_id = two_nominal_data.value_id("Hotel-group", "M")
        g_id = two_nominal_data.value_id("Airline", "G")
        node = figure2_tree.root.children[m_id].children[g_id]
        assert names_of(node.disqualified) == {"d"}

    def test_phi_children_inherit_parent_payload(self, figure2_tree):
        for child in figure2_tree.root.children.values():
            assert child.phi_child.disqualified == child.disqualified


class TestExample1Queries:
    """Example 1: the four queries QA-QD and their printed answers."""

    @pytest.mark.parametrize(
        "query, expected",
        [
            ({"Hotel-group": "M < *"}, {"a", "c", "d", "e", "f"}),
            ({"Hotel-group": "M < *", "Airline": "G < *"}, {"a", "c", "e", "f"}),
            (
                {"Hotel-group": "M < H < *", "Airline": "G < *"},
                {"a", "c", "e", "f"},
            ),
            (
                {"Hotel-group": "M < H < *", "Airline": "G < R < *"},
                {"a", "c", "e", "f"},
            ),
        ],
        ids=["QA", "QB", "QC", "QD"],
    )
    def test_query(self, figure2_tree, query, expected):
        assert names_of(figure2_tree.query(Preference(query))) == expected

    def test_qc_subquery_skylines(self, two_nominal_data):
        """The intermediate skylines the paper quotes while deriving QC."""
        sky_m_g = names_of(
            skyline(
                two_nominal_data,
                Preference({"Hotel-group": "M < *", "Airline": "G < *"}),
            ).ids
        )
        sky_h_g = names_of(
            skyline(
                two_nominal_data,
                Preference({"Hotel-group": "H < *", "Airline": "G < *"}),
            ).ids
        )
        assert sky_m_g == {"a", "c", "e", "f"}
        assert sky_h_g == {"a", "c", "e"}


class TestTheorem1Monotonicity:
    """Stronger orders only shrink the skyline (on the paper's data)."""

    def test_refinement_chain(self, vacation_data):
        chains = [(), ("H",), ("H", "M"), ("H", "M", "T")]
        previous = None
        for chain in chains:
            pref = (
                Preference({"Hotel-group": ImplicitPreference(chain)})
                if chain
                else None
            )
            current = set(skyline(vacation_data, pref).ids)
            if previous is not None:
                assert current <= previous
            previous = current
