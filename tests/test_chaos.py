"""Chaos suite: seeded fault injection against a real socket server.

Every test here drives a durable :class:`SkylineService` behind a
:class:`ServerThread` over real TCP with an active
:class:`~repro.faults.FaultPlan`, asserting the degradation contract of
``docs/serving.md`` end to end:

* a storage append failure degrades the service to read-only instead of
  killing it - queries keep answering, mutations answer ``503`` +
  ``Retry-After``, ``/healthz`` and ``/metrics`` report the state, and a
  checkpoint re-arms writes;
* idempotency-keyed retries never double-apply, whether the first
  attempt's response was dropped on the wire or its deadline expired
  while it was still executing;
* under a seeded storm of dispatch errors, dropped responses, executor
  delays and torn WAL writes, the :class:`ResilientClient` loses **zero
  acknowledged requests and applies zero duplicates** - proven by a
  twin oracle service fed exactly the acknowledged operations and a
  kill-and-recover comparison at the end.

Plans are seeded, so a failure here replays identically under the same
seed - chaos without flakes.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import faults
from repro.datagen import SyntheticConfig, generate
from repro.datagen.generator import frequent_value_template
from repro.datagen.queries import generate_preferences
from repro.faults import FaultPlan, FaultRule
from repro.net import (
    CircuitBreaker,
    MetricsRegistry,
    NetClient,
    ResilientClient,
    RetriesExhausted,
    RetryPolicy,
    ServerConfig,
    ServerThread,
)
from repro.serve.service import SkylineService


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """Every test starts and ends with fault injection disarmed."""
    faults.clear()
    yield
    faults.clear()


def make_stack(tmp_path, **config_kwargs):
    """A durable service + registry + config, ready for ServerThread."""
    base = generate(
        SyntheticConfig(
            num_points=120, num_numeric=2, num_nominal=2,
            cardinality=4, seed=11,
        )
    )
    template = frequent_value_template(base)
    service = SkylineService(
        base, template, cache_capacity=32,
        storage_dir=tmp_path / "state",
    )
    prefs = generate_preferences(
        base, order=2, count=4, template=template, seed=3
    )
    registry = MetricsRegistry()
    config = ServerConfig(port=0, access_log=False, **config_kwargs)
    return base, service, prefs, registry, config


def fast_client(host, port, **kwargs):
    """A ResilientClient tuned for test speed (ms backoff, no trips)."""
    kwargs.setdefault("policy", RetryPolicy(
        max_attempts=8, base_delay=0.002, max_delay=0.05,
    ))
    kwargs.setdefault("breaker", CircuitBreaker(threshold=1000))
    kwargs.setdefault("seed", 1234)
    return ResilientClient(host, port, timeout=10.0, **kwargs)


# ---------------------------------------------------------------------------
# graceful degradation, end to end
# ---------------------------------------------------------------------------
def test_storage_failure_degrades_service_not_process(tmp_path):
    """The acceptance scenario: append fails, serving survives.

    One torn WAL write must yield exactly: a ``503`` +
    ``Retry-After`` + ``storage-unavailable`` body on the mutation,
    ``200`` queries throughout, a degraded ``/healthz`` and ``/metrics``,
    and - after a checkpoint - a healed server that applies mutations
    again.
    """
    base, service, prefs, registry, config = make_stack(tmp_path)
    plan = FaultPlan(rules=[
        FaultRule(site="wal.append", kind="torn", times=1),
    ])
    with ServerThread(service, config, registry=registry) as thread:
        with NetClient(thread.host, thread.port) as client:
            assert client.insert([base.row(0)]).status == 200
            acked_version = service.version

            with faults.use(plan):
                failed = client.insert([base.row(1)])
            assert failed.status == 503
            assert failed.json["error"]["kind"] == "storage-unavailable"
            assert failed.retry_after is not None

            # The process is alive and read-only, not dead.
            again = client.insert([base.row(2)])
            assert again.status == 503
            query = client.query(prefs[0])
            assert query.status == 200
            assert query.json["version"] == acked_version
            health = client.healthz()
            assert health.status == 200  # degraded != down
            assert health.json["status"] == "degraded"
            assert health.json["health"] == "degraded"
            metrics = client.metrics().text
            assert "repro_service_health_degraded 1" in metrics

            # Checkpoint repairs the store and re-arms the write path.
            service.checkpoint()
            health = client.healthz()
            assert health.json["status"] == "ok"
            assert health.json["health"] == "healthy"
            healed = client.insert([base.row(1)])
            assert healed.status == 200
            assert healed.json["version"] == acked_version + 1
            metrics = client.metrics().text
            assert "repro_service_health_degraded 0" in metrics
            assert "repro_service_recoveries_total 1" in metrics
    assert plan.injected() == {"wal.append:torn": 1}


def test_resilient_client_rides_through_degradation(tmp_path):
    """Backoff + Retry-After + a healer thread = the caller never sees it.

    The resilient client's retries span the degraded window; a
    background "operator" checkpoints the store while retries are in
    flight, and the original call completes successfully.
    """
    base, service, prefs, registry, config = make_stack(tmp_path)
    plan = FaultPlan(rules=[
        FaultRule(site="wal.append", kind="enospc", times=1),
    ])
    with ServerThread(service, config, registry=registry) as thread:
        healer = threading.Timer(0.05, service.checkpoint)
        with faults.use(plan):
            client = fast_client(thread.host, thread.port)
            with client:
                healer.start()
                response = client.insert([base.row(0)])
                assert response.status == 200
        healer.join()
        assert client.counters()["retries"] >= 1
    assert service.health == "healthy"
    assert service.version == 1


# ---------------------------------------------------------------------------
# idempotency over the wire
# ---------------------------------------------------------------------------
def test_dropped_response_retry_applies_exactly_once(tmp_path):
    """The server applies, the wire eats the response, the retry replays.

    ``net.send`` drops the first mutation response after it executed;
    the keyed retry must *replay* the stored answer - same version,
    same point ids, version bumped exactly once.
    """
    base, service, prefs, registry, config = make_stack(tmp_path)
    plan = FaultPlan(rules=[
        FaultRule(site="net.send", kind="drop", times=1),
    ])
    with ServerThread(service, config, registry=registry) as thread:
        with faults.use(plan), fast_client(thread.host, thread.port) as client:
            response = client.insert([base.row(0)])
            assert response.status == 200
            assert response.json["version"] == 1
            # The retry may come from either resilience layer: the
            # NetClient's one transparent reconnect or the backoff loop.
            assert response.headers.get("Idempotency-Replayed") == "true"
    assert service.version == 1  # applied exactly once
    assert plan.injected() == {"net.send:drop": 1}
    idem = registry.get("repro_net_idempotency_total")
    assert idem.value("fresh") == 1
    assert idem.value("replayed") == 1
    assert registry.get("repro_net_faults_injected_total").value("net.send") == 1


def test_concurrent_same_key_answers_409_then_replays(tmp_path):
    """A duplicate arriving mid-execution conflicts, then replays.

    While the first attempt is still on the executor (slowed by
    ``serve.execute``), a second request with the same key must answer
    ``409`` + ``Retry-After`` without executing; once the first
    settles, the same key replays its response.
    """
    base, service, prefs, registry, config = make_stack(tmp_path)
    plan = FaultPlan(rules=[
        FaultRule(site="serve.execute", kind="delay", delay=0.4, times=1),
    ])
    results = {}

    def first_attempt():
        with NetClient(thread.host, thread.port) as client:
            results["first"] = client.insert([base.row(0)],
                                             idempotency_key="dup-1")

    with ServerThread(service, config, registry=registry) as thread:
        with faults.use(plan):
            worker = threading.Thread(target=first_attempt)
            worker.start()
            # Wait until the first attempt is *on the executor* (the
            # serve.execute site records the crossing after the key is
            # reserved), so the duplicate deterministically conflicts.
            deadline = time.time() + 2.0
            while plan.crossings("serve.execute") < 1:
                assert time.time() < deadline, "first attempt never ran"
                time.sleep(0.005)
            with NetClient(thread.host, thread.port) as client:
                duplicate = client.insert([base.row(0)],
                                          idempotency_key="dup-1")
                assert duplicate.status == 409
                assert duplicate.json["error"]["kind"] == (
                    "idempotency-in-flight"
                )
                assert duplicate.retry_after is not None
                worker.join()
                assert results["first"].status == 200
                replay = client.insert([base.row(0)],
                                       idempotency_key="dup-1")
                assert replay.status == 200
                assert replay.json == results["first"].json
    assert service.version == 1


def test_deadline_expiry_cannot_double_apply(tmp_path):
    """A 504'd mutation settles its key late; the retry replays.

    The executor outlives the request deadline; the client gets an
    honest ``504``.  The reservation must stay held (``409`` while the
    thread still runs) and settle from the *real* outcome, so the
    eventual retry replays instead of re-applying.
    """
    base, service, prefs, registry, config = make_stack(
        tmp_path, request_timeout=0.1,
    )
    plan = FaultPlan(rules=[
        FaultRule(site="serve.execute", kind="delay", delay=0.4, times=1),
    ])
    with ServerThread(service, config, registry=registry) as thread:
        with faults.use(plan), NetClient(thread.host, thread.port) as client:
            timed_out = client.insert([base.row(0)], idempotency_key="slow-1")
            assert timed_out.status == 504
            deadline = time.time() + 5.0
            while time.time() < deadline:
                retry = client.insert([base.row(0)],
                                      idempotency_key="slow-1")
                if retry.status == 200:
                    break
                assert retry.status == 409  # still executing: held, not lost
                time.sleep(0.05)
            assert retry.status == 200
            assert retry.headers.get("Idempotency-Replayed") == "true"
    assert service.version == 1  # the slow attempt applied exactly once


# ---------------------------------------------------------------------------
# the storm: differential twin oracle + kill-and-recover
# ---------------------------------------------------------------------------
def test_seeded_chaos_storm_loses_nothing_and_duplicates_nothing(tmp_path):
    """The headline chaos run.

    A seeded plan throws dispatch 500s, dropped responses and executor
    delays at every request, plus two scheduled torn WAL writes that
    force real degraded windows mid-storm.  A single mutator drives
    inserts and deletes through a :class:`ResilientClient` (healing
    degraded windows via checkpoint, as an operator would), recording
    every *acknowledged* operation.  Afterwards:

    * a twin service fed exactly the acknowledged operations must agree
      with the live server on version, point ids and query answers
      (zero duplicates, zero ghosts);
    * the server is killed and recovered from disk, and the recovered
      state must agree with the twin too (zero lost acknowledgements).
    """
    base, service, prefs, registry, config = make_stack(tmp_path)
    plan = FaultPlan(seed=2024, rules=[
        FaultRule(site="net.dispatch", kind="error", probability=0.08),
        FaultRule(site="net.send", kind="drop", probability=0.08),
        FaultRule(site="serve.execute", kind="delay", probability=0.2,
                  delay=0.002),
        FaultRule(site="wal.append", kind="torn", at=(4,)),
        FaultRule(site="wal.append", kind="enospc", at=(9,)),
    ])
    acked = []  # (op, payload, reported point_ids, reported version)
    live_ids = []

    def mutate(client, call, op, payload):
        """One mutation, healing degraded windows like an operator."""
        for _ in range(3):
            try:
                response = call()
            except RetriesExhausted as exc:
                # Only an unsettled storage-unavailable window exhausts
                # retries under this plan; heal and go again.  Nothing
                # was applied (write-ahead), so a fresh key is safe.
                assert exc.last_response is not None
                assert exc.last_response.status == 503
                service.checkpoint()
                continue
            assert response.status == 200
            acked.append((op, payload, tuple(response.json["point_ids"]),
                          response.json["version"]))
            return response
        raise AssertionError("mutation did not settle in 3 healed rounds")

    with ServerThread(service, config, registry=registry) as thread:
        with faults.use(plan), fast_client(thread.host, thread.port) as client:
            for step in range(30):
                row = base.row(step % len(base))
                if step % 5 == 4 and live_ids:
                    ids = [live_ids.pop(0)]
                    mutate(client, lambda: client.delete(ids),
                           "delete", tuple(ids))
                else:
                    response = mutate(
                        client, lambda: client.insert([row]),
                        "insert", tuple(row),
                    )
                    live_ids.extend(response.json["point_ids"])
                if step % 7 == 0:
                    query = client.query(prefs[step % len(prefs)])
                    assert query.status == 200
                    assert query.json["version"] == acked[-1][3]
        live_version = service.version
        live_answers = {
            pref: service.query(pref, use_cache=False).ids for pref in prefs
        }
        storm_counters = client.counters()

    # The storm actually stormed: faults fired at every layer.
    injected = plan.injected()
    assert injected.get("wal.append:torn") == 1
    assert injected.get("wal.append:enospc") == 1
    assert injected.get("net.dispatch:error", 0) >= 1
    assert injected.get("net.send:drop", 0) >= 1
    assert storm_counters["retries"] >= 1

    # Twin oracle: exactly the acknowledged ops, nothing else.
    twin = SkylineService(
        base, frequent_value_template(base), cache_capacity=32
    )
    for op, payload, point_ids, version in acked:
        if op == "insert":
            report = twin.insert_rows([payload])
        else:
            report = twin.delete_rows(list(payload))
        assert tuple(report.point_ids) == point_ids  # same ids assigned
        assert report.version == version             # same version stamps
    assert twin.version == live_version
    for pref in prefs:
        assert twin.query(pref, use_cache=False).ids == live_answers[pref]

    # Kill-and-recover: the acknowledged history survives the process.
    recovered = SkylineService.recover(tmp_path / "state")
    assert recovered.version == twin.version
    for pref in prefs:
        assert recovered.query(pref, use_cache=False).ids == (
            live_answers[pref]
        )
