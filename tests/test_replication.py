"""Tests of :mod:`repro.replication`: WAL shipping, followers, shards.

Layered like the package itself:

* the offset-addressed WAL window reader (pure storage, no service),
* the service-level stream endpoints (snapshot / window / gone),
* the follower protocol - differential equality against the primary at
  *every* version, torn-frame refusal, rotation re-sync, discontinuity
  re-sync - driven synchronously through
  :class:`~repro.replication.stream.LocalReplicationSource`,
* chaos via the ``replication.stream`` fault site (stream cut
  mid-record and resumed; faked rotations),
* replica-mode HTTP servers, the fan-out router and the shard
  coordinator over real sockets,
* fd hygiene: closing services/followers releases every descriptor.

The paper's contract here is exactness: a replica or a scatter-gather
merge must answer *identically* to a single-node service at the same
version, so nearly every test ends in an id-for-id comparison.
"""

from __future__ import annotations

import os
import socket

import pytest

from repro import faults
from repro.core.skyline import skyline
from repro.datagen import SyntheticConfig, generate
from repro.datagen.queries import generate_preferences
from repro.exceptions import (
    DatasetError,
    ReplicationError,
    ShardError,
    StorageError,
)
from repro.faults import FaultPlan, FaultRule
from repro.net.client import NetClient
from repro.net.config import ServerConfig
from repro.net.resilient import RetryPolicy
from repro.net.server import ServerThread
from repro.replication import (
    FanOutClient,
    Follower,
    HttpReplicationSource,
    LocalReplicationSource,
    ReplicationSource,
    ShardCoordinator,
    stripe_dataset,
)
from repro.serve.service import SkylineService
from repro.storage import WriteAheadLog, frame_record, verify_frame


def _config() -> ServerConfig:
    return ServerConfig(host="127.0.0.1", port=0)


#: Fail fast in tests: transient trouble is either injected (and the
#: test wants to see the failure) or a bug.
FAST = RetryPolicy(max_attempts=2, base_delay=0.005, max_delay=0.02)


@pytest.fixture(scope="module")
def dataset():
    return generate(SyntheticConfig(
        num_points=160, num_numeric=2, num_nominal=2, cardinality=5,
        seed=11,
    ))


@pytest.fixture(scope="module")
def preferences(dataset):
    return [None] + generate_preferences(dataset, 1, 3, seed=7)


def _ids(service, preference):
    return service.query(preference, use_cache=False).ids


# ---------------------------------------------------------------------------
# WAL window reader
# ---------------------------------------------------------------------------
def _write_wal(path, count):
    wal = WriteAheadLog(path)
    for version in range(1, count + 1):
        wal.append({"op": "insert", "version": version, "rows": [[version]]})
    wal.close()
    return path.read_bytes()


def test_read_window_paginates_on_frame_boundaries(tmp_path):
    raw = _write_wal(tmp_path / "wal", 7)
    offset, shipped = 0, b""
    hops = 0
    while True:
        window = WriteAheadLog.read_window(tmp_path / "wal", offset, 64)
        for frame in window.frames:
            verify_frame(frame)  # every shipped frame is whole and valid
            shipped += frame
        assert window.next_offset == offset + sum(
            len(f) for f in window.frames
        )
        offset = window.next_offset
        hops += 1
        if window.end_of_log:
            break
    assert shipped == raw  # stream == file, byte for byte
    assert hops > 1  # 64-byte windows actually paginated


def test_read_window_returns_oversized_frame_rather_than_stall(tmp_path):
    _write_wal(tmp_path / "wal", 2)
    window = WriteAheadLog.read_window(tmp_path / "wal", 0, 1)
    assert len(window.frames) == 1  # one frame despite max_bytes=1
    assert not window.end_of_log


def test_read_window_missing_file_is_empty_stream(tmp_path):
    window = WriteAheadLog.read_window(tmp_path / "nope", 0, 1024)
    assert window.frames == () and window.end_of_log
    assert window.next_offset == 0


def test_read_window_rejects_bad_arguments(tmp_path):
    _write_wal(tmp_path / "wal", 1)
    with pytest.raises(StorageError):
        WriteAheadLog.read_window(tmp_path / "wal", -1, 10)
    with pytest.raises(StorageError):
        WriteAheadLog.read_window(tmp_path / "wal", 0, 0)
    with pytest.raises(StorageError):
        WriteAheadLog.read_window(tmp_path / "wal", 10_000, 10)


def test_read_window_stops_before_torn_tail(tmp_path):
    raw = _write_wal(tmp_path / "wal", 3)
    torn = raw + b"deadbeef {\"op\": \"ins"  # append in flight
    (tmp_path / "wal").write_bytes(torn)
    window = WriteAheadLog.read_window(tmp_path / "wal", 0, 1 << 20)
    assert len(window.frames) == 3
    assert window.next_offset == len(raw)  # never advances past the tear


def test_read_window_mid_file_corruption_raises(tmp_path):
    raw = _write_wal(tmp_path / "wal", 3)
    lines = raw.splitlines(keepends=True)
    lines[1] = b"00000000" + lines[1][8:]  # break the middle CRC
    (tmp_path / "wal").write_bytes(b"".join(lines))
    with pytest.raises(StorageError, match="corrupt at byte"):
        WriteAheadLog.read_window(tmp_path / "wal", 0, 1 << 20)


def test_frame_round_trip_and_tamper_detection():
    record = {"op": "insert", "version": 1, "rows": [[1, "a"]]}
    frame = frame_record(record)
    assert verify_frame(frame) == record
    with pytest.raises(StorageError):
        verify_frame(frame.replace(b"insert", b"delete"))


# ---------------------------------------------------------------------------
# service stream endpoints
# ---------------------------------------------------------------------------
def test_replication_snapshot_and_window_round_trip(tmp_path, dataset):
    with SkylineService(dataset, storage_dir=tmp_path / "p") as primary:
        snap = primary.replication_snapshot()
        assert snap["version"] == 0
        assert snap["primary_version"] == 0
        primary.insert_rows([dataset.row(0)])
        window = primary.replication_window(0, 0, 1 << 20)
        assert not window["gone"]
        assert window["primary_version"] == 1
        assert len(window["frames"]) == 1
        record = verify_frame(window["frames"][0].encode("ascii"))
        assert record["op"] == "insert" and record["version"] == 1
        assert window["end_of_log"]


def test_replication_window_goes_gone_after_rotation(tmp_path, dataset):
    with SkylineService(dataset, storage_dir=tmp_path / "p") as primary:
        primary.insert_rows([dataset.row(0)])
        primary.checkpoint()  # rotates: generation 0 is folded away
        assert primary.replication_window(0, 0, 1024)["gone"]
        assert not primary.replication_window(1, 0, 1024)["gone"]


def test_storage_less_service_has_no_stream(dataset):
    with SkylineService(dataset) as service:
        with pytest.raises(StorageError):
            service.replication_snapshot()
        with pytest.raises(StorageError):
            service.replication_window(0, 0, 1024)


# ---------------------------------------------------------------------------
# follower protocol (synchronous, no sockets)
# ---------------------------------------------------------------------------
def _drain(follower):
    # A ``gone`` window applies 0 frames but flips the state to
    # "syncing"; the extra leading poll turns that into the re-sync.
    follower.poll()
    while follower.poll() > 0:
        pass


def test_follower_differential_at_every_version(
    tmp_path, dataset, preferences
):
    """The tentpole invariant: replica answers == primary answers, at
    every version the primary ever passes through."""
    primary = SkylineService(dataset, storage_dir=tmp_path / "p")
    follower = Follower(LocalReplicationSource(primary), poll_interval=0.01)
    follower.sync()
    steps = [
        lambda: primary.insert_rows([dataset.row(0), dataset.row(1)]),
        lambda: primary.delete_rows([1, 3]),
        lambda: primary.insert_rows([dataset.row(2)]),
        lambda: primary.compact(),  # non-identity remap: logged + shipped
        lambda: primary.delete_rows([0]),
    ]
    try:
        for step in steps:
            step()
            _drain(follower)
            assert follower.applied_version == primary.version
            assert follower.lag == 0
            for preference in preferences:
                assert _ids(follower.service, preference) == _ids(
                    primary, preference
                )
        assert follower.resyncs == 1  # pure tailing, no re-bootstrap
        assert follower.torn_refusals == 0
    finally:
        follower.close()
        primary.close()


def test_follower_resyncs_after_checkpoint_rotation(tmp_path, dataset):
    primary = SkylineService(dataset, storage_dir=tmp_path / "p")
    follower = Follower(LocalReplicationSource(primary), poll_interval=0.01)
    follower.sync()
    try:
        primary.insert_rows([dataset.row(0)])
        _drain(follower)
        primary.checkpoint()  # kill the generation the follower tails
        primary.insert_rows([dataset.row(1)])
        _drain(follower)  # observes gone, re-syncs, catches up
        assert follower.resyncs == 2
        assert follower.applied_version == primary.version == 2
        assert _ids(follower.service, None) == _ids(primary, None)
    finally:
        follower.close()
        primary.close()


def test_follower_refuses_torn_frame_and_recovers(tmp_path, dataset):
    """Chaos: the stream is cut mid-record, the follower refuses the
    torn frame without advancing, re-fetches it intact, and converges
    with zero divergence."""
    primary = SkylineService(dataset, storage_dir=tmp_path / "p")
    follower = Follower(LocalReplicationSource(primary), poll_interval=0.01)
    follower.sync()
    try:
        primary.insert_rows([dataset.row(0)])
        primary.insert_rows([dataset.row(1)])
        plan = FaultPlan(rules=[
            FaultRule(site="replication.stream", kind="torn", at=(1,)),
        ])
        with faults.use(plan):
            with pytest.raises(ReplicationError, match="verification"):
                follower.poll()  # the cut window: refuse, do not advance
            applied_after_tear = follower.applied_version
            assert applied_after_tear < primary.version
            _drain(follower)  # re-fetch from the held offset, catch up
        assert follower.torn_refusals == 1
        assert follower.resyncs == 1  # a tear never forces a re-sync
        assert follower.applied_version == primary.version
        assert _ids(follower.service, None) == _ids(primary, None)
    finally:
        follower.close()
        primary.close()


def test_follower_resyncs_on_faked_rotation(tmp_path, dataset):
    primary = SkylineService(dataset, storage_dir=tmp_path / "p")
    follower = Follower(LocalReplicationSource(primary), poll_interval=0.01)
    follower.sync()
    try:
        primary.insert_rows([dataset.row(0)])
        plan = FaultPlan(rules=[
            FaultRule(site="replication.stream", kind="gone", at=(1,)),
        ])
        with faults.use(plan):
            assert follower.poll() == 0  # observes the (fake) rotation
            _drain(follower)
        assert follower.resyncs == 2
        assert follower.applied_version == primary.version
        assert _ids(follower.service, None) == _ids(primary, None)
    finally:
        follower.close()
        primary.close()


class _ScriptedSource(ReplicationSource):
    """A source whose windows come from a script (after a real sync)."""

    def __init__(self, primary, windows):
        self._real = LocalReplicationSource(primary)
        self.windows = list(windows)

    def snapshot(self):
        return self._real.snapshot()

    def window(self, base, offset, max_bytes):
        if self.windows:
            return self.windows.pop(0)
        return self._real.window(base, offset, max_bytes)


def test_follower_refuses_version_discontinuity(tmp_path, dataset):
    primary = SkylineService(dataset, storage_dir=tmp_path / "p")
    gap_frame = frame_record({
        "op": "insert", "version": 7, "rows": [list(dataset.row(0))],
    }).decode("ascii")
    source = _ScriptedSource(primary, [{
        "gone": False, "base": 0, "offset": 0, "next_offset": len(gap_frame),
        "end_of_log": True, "frames": [gap_frame], "primary_version": 7,
    }])
    follower = Follower(source, poll_interval=0.01)
    follower.sync()
    try:
        with pytest.raises(ReplicationError, match="discontinuity"):
            follower.poll()
        assert follower.applied_version == 0  # nothing applied
        assert follower.frames_applied == 0
        _drain(follower)  # recovers by re-syncing from the real source
        assert follower.resyncs == 2
        assert follower.applied_version == primary.version
    finally:
        follower.close()
        primary.close()


def test_follower_background_thread_converges(tmp_path, dataset):
    primary = SkylineService(dataset, storage_dir=tmp_path / "p")
    follower = Follower(LocalReplicationSource(primary), poll_interval=0.01)
    follower.sync()
    follower.start()
    try:
        with pytest.raises(ReplicationError):
            follower.start()  # double-start is a bug, not a no-op
        primary.insert_rows([dataset.row(0)])
        primary.delete_rows([0])
        assert follower.wait_for_version(primary.version, timeout=10.0)
        assert _ids(follower.service, None) == _ids(primary, None)
    finally:
        follower.close()
        primary.close()


# ---------------------------------------------------------------------------
# replica-mode HTTP server
# ---------------------------------------------------------------------------
def test_replica_server_rejects_writes_and_reports_role(tmp_path, dataset):
    primary = SkylineService(dataset, storage_dir=tmp_path / "p")
    follower = Follower(LocalReplicationSource(primary), poll_interval=0.01)
    follower.sync()
    try:
        with ServerThread(
            follower.service, _config(), follower=follower, debug=False
        ) as server:
            with NetClient(server.host, server.port) as client:
                health = client.healthz()
                assert health.status == 200
                assert health.json["role"] == "replica"
                assert health.json["replication"]["ready"] is True
                refused = client.insert([list(dataset.row(0))])
                assert refused.status == 403
                assert (
                    refused.json["error"]["kind"] == "read-only-replica"
                )
                assert client.delete([0]).status == 403
                assert client.compact().status == 403
                # Reads keep working, identically to the primary.
                assert client.query_ids(None) == _ids(primary, None)
                metrics = client.metrics()
                assert "repro_replication_ready 1" in metrics.text
                assert "repro_replication_lag_versions" in metrics.text
                assert "repro_replication_torn_refusals_total" in (
                    metrics.text
                )
    finally:
        follower.close()
        primary.close()


class _DeadSource(ReplicationSource):
    def snapshot(self):
        raise ReplicationError("primary unreachable")

    def window(self, base, offset, max_bytes):
        raise ReplicationError("primary unreachable")


def test_unsynced_replica_answers_503_syncing(dataset):
    placeholder = SkylineService(dataset)
    follower = Follower(_DeadSource())
    try:
        with ServerThread(
            placeholder, _config(), follower=follower, debug=False
        ) as server:
            with NetClient(server.host, server.port) as client:
                health = client.healthz()
                assert health.status == 503
                assert health.json["status"] == "syncing"
                response = client.query(None)
                assert response.status == 503
                assert (
                    response.json["error"]["kind"] == "replica-syncing"
                )
                assert response.retry_after is not None
                # Mutations are refused for role, not readiness.
                assert client.insert([list(dataset.row(0))]).status == 403
    finally:
        placeholder.close()


def test_replica_server_tracks_resync_service_swap(tmp_path, dataset):
    """After a rotation re-sync replaces the service object, the server
    must answer from the *new* replica (the _service() accessor)."""
    primary = SkylineService(dataset, storage_dir=tmp_path / "p")
    follower = Follower(LocalReplicationSource(primary), poll_interval=0.01)
    follower.sync()
    try:
        with ServerThread(
            follower.service, _config(), follower=follower, debug=False
        ) as server:
            before = follower.service
            primary.insert_rows([dataset.row(0)])
            primary.checkpoint()
            primary.insert_rows([dataset.row(1)])
            _drain(follower)
            assert follower.service is not before  # really swapped
            with NetClient(server.host, server.port) as client:
                assert client.query_ids(None) == _ids(primary, None)
                health = client.healthz()
                assert (
                    health.json["replication"]["applied_version"]
                    == primary.version
                )
    finally:
        follower.close()
        primary.close()


def test_replication_endpoints_over_the_wire(tmp_path, dataset):
    with SkylineService(dataset, storage_dir=tmp_path / "p") as primary:
        with ServerThread(primary, _config(), debug=False) as server:
            with NetClient(server.host, server.port) as client:
                snap = client.replication_snapshot()
                assert snap.status == 200 and snap.json["version"] == 0
                client.insert([list(dataset.row(0))])
                window = client.replication_wal(0, 0)
                assert window.status == 200
                assert len(window.json["frames"]) == 1
                # Wire-strict decoding: bad shapes answer 400.
                bad = client.request(
                    "POST", "/replication/wal", {"base": -1, "offset": 0}
                )
                assert bad.status == 400
                typo = client.request(
                    "POST", "/replication/wal",
                    {"base": 0, "offset": 0, "extra": 1},
                )
                assert typo.status == 400


def test_replication_endpoints_409_without_storage(dataset):
    with SkylineService(dataset) as service:  # storage-less primary
        with ServerThread(service, _config(), debug=False) as server:
            with NetClient(server.host, server.port) as client:
                response = client.replication_snapshot()
                assert response.status == 409
                assert (
                    response.json["error"]["kind"]
                    == "replication-unavailable"
                )
                assert client.replication_wal(0, 0).status == 409


def test_http_follower_over_real_sockets(tmp_path, dataset, preferences):
    with SkylineService(dataset, storage_dir=tmp_path / "p") as primary:
        with ServerThread(primary, _config(), debug=False) as server:
            follower = Follower(
                HttpReplicationSource(
                    server.host, server.port, policy=FAST, seed=3
                ),
                poll_interval=0.01,
            )
            follower.sync()
            follower.start()
            try:
                primary.insert_rows([dataset.row(0)])
                primary.delete_rows([2])
                assert follower.wait_for_version(
                    primary.version, timeout=10.0
                )
                for preference in preferences:
                    assert _ids(follower.service, preference) == _ids(
                        primary, preference
                    )
            finally:
                follower.close()


# ---------------------------------------------------------------------------
# fan-out router
# ---------------------------------------------------------------------------
def _free_port() -> int:
    """A port with nothing listening on it."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_router_bounded_staleness_and_failover(tmp_path, dataset):
    primary = SkylineService(dataset, storage_dir=tmp_path / "p")
    follower = Follower(LocalReplicationSource(primary), poll_interval=0.01)
    follower.sync()  # synced at version 0, then left un-started (lags)
    try:
        with ServerThread(primary, _config(), debug=False) as pserver:
            with ServerThread(
                follower.service, _config(), follower=follower, debug=False
            ) as rserver:
                router = FanOutClient(
                    (pserver.host, pserver.port),
                    [(rserver.host, rserver.port)],
                    policy=FAST, seed=9,
                )
                with router:
                    # Fresh cluster: the replica serves reads.
                    assert router.query(None).status == 200
                    assert router.counters()["replica_served"] == 1
                    # Mutate: watermark moves, the lagging replica is
                    # rejected as stale and the primary answers.
                    assert router.insert(
                        [list(dataset.row(0))]
                    ).status == 200
                    assert router.watermark == 1
                    answer = router.query(None)
                    assert answer.status == 200
                    assert answer.json["version"] == 1
                    counters = router.counters()
                    assert counters["stale_rejected"] == 1
                    assert counters["primary_served"] == 1
                    # Replica catches up -> serves again.
                    _drain(follower)
                    assert router.query(None).status == 200
                    assert router.counters()["replica_served"] == 2

        # Dead replica: failover to the primary, never an error.
        with ServerThread(primary, _config(), debug=False) as pserver:
            router = FanOutClient(
                (pserver.host, pserver.port),
                [("127.0.0.1", _free_port())],
                policy=FAST, seed=9,
            )
            with router:
                assert router.query_ids(None) == _ids(primary, None)
                assert router.counters()["failovers"] >= 1
                assert router.counters()["primary_served"] == 1
    finally:
        follower.close()
        primary.close()


def test_router_max_staleness_accepts_bounded_lag(tmp_path, dataset):
    primary = SkylineService(dataset, storage_dir=tmp_path / "p")
    follower = Follower(LocalReplicationSource(primary), poll_interval=0.01)
    follower.sync()
    try:
        with ServerThread(primary, _config(), debug=False) as pserver:
            with ServerThread(
                follower.service, _config(), follower=follower, debug=False
            ) as rserver:
                router = FanOutClient(
                    (pserver.host, pserver.port),
                    [(rserver.host, rserver.port)],
                    max_staleness=1, policy=FAST, seed=2,
                )
                with router:
                    router.insert([list(dataset.row(0))])
                    # One version behind <= max_staleness: accepted.
                    answer = router.query(None)
                    assert answer.json["version"] == 0
                    assert router.counters()["replica_served"] == 1
                    # min_version pins override the slack.
                    pinned = router.query(None, min_version=1)
                    assert pinned.json["version"] == 1
                    assert router.counters()["primary_served"] == 1
    finally:
        follower.close()
        primary.close()


def test_router_rejects_negative_staleness():
    with pytest.raises(ValueError):
        FanOutClient(("127.0.0.1", 1), max_staleness=-1)


# ---------------------------------------------------------------------------
# shard coordinator
# ---------------------------------------------------------------------------
def test_stripe_dataset_round_robin(dataset):
    stripes = stripe_dataset(dataset, 3)
    assert sum(len(s) for s in stripes) == len(dataset)
    for shard, stripe in enumerate(stripes):
        for local in range(len(stripe)):
            assert stripe.row(local) == dataset.row(local * 3 + shard)
    with pytest.raises(ValueError):
        stripe_dataset(dataset, 0)


@pytest.fixture()
def shard_cluster(dataset):
    """Two shard servers over the stripes + a coordinator."""
    services = [SkylineService(s) for s in stripe_dataset(dataset, 2)]
    servers = [
        ServerThread(service, _config(), debug=False)
        for service in services
    ]
    for server in servers:
        server.__enter__()
    coordinator = ShardCoordinator(
        dataset,
        [(server.host, server.port) for server in servers],
        policy=FAST,
        seed=4,
    )
    try:
        yield coordinator
    finally:
        coordinator.close()
        for server in servers:
            server.__exit__(None, None, None)
        for service in services:
            service.close()


def test_coordinator_matches_single_node(
    shard_cluster, dataset, preferences
):
    for preference in preferences:
        merged = shard_cluster.query(preference)
        direct = skyline(dataset, preference).ids
        assert merged.ids == direct  # gids == original row indices
        assert merged.candidates >= len(merged.ids)
        assert len(merged.shard_versions) == 2


def test_coordinator_mutations_stay_exact(shard_cluster, dataset):
    mirror = SkylineService(dataset)
    try:
        update = shard_cluster.insert([dataset.row(0), dataset.row(1)])
        assert update.gids == (len(dataset), len(dataset) + 1)
        assert {shard_cluster.shard_of(g) for g in update.gids} == {0, 1}
        mirror.insert_rows([dataset.row(0), dataset.row(1)])
        assert shard_cluster.query(None).ids == tuple(_ids(mirror, None))

        shard_cluster.delete([update.gids[0], 5])
        mirror.delete_rows([update.gids[0], 5])
        assert shard_cluster.query(None).ids == tuple(_ids(mirror, None))

        with pytest.raises(DatasetError, match="unknown global id"):
            shard_cluster.delete([update.gids[0]])  # already gone
    finally:
        mirror.close()


def test_coordinator_straggler_shard_still_exact(shard_cluster, dataset):
    plan = FaultPlan(rules=[
        FaultRule(site="serve.execute", kind="delay", delay=0.2, at=(1,)),
    ])
    with faults.use(plan):
        merged = shard_cluster.query(None)
    assert merged.ids == skyline(dataset, None).ids
    assert merged.seconds >= 0.2  # it waited for the straggler


def test_coordinator_refuses_partial_coverage(dataset):
    stripes = stripe_dataset(dataset, 2)
    with SkylineService(stripes[0]) as live:
        with ServerThread(live, _config(), debug=False) as server:
            coordinator = ShardCoordinator(
                dataset,
                [
                    (server.host, server.port),
                    ("127.0.0.1", _free_port()),  # shard 1 is down
                ],
                policy=FAST,
                seed=4,
            )
            with coordinator:
                with pytest.raises(ShardError, match="exact"):
                    coordinator.query(None)
                with pytest.raises(ShardError, match="not inserted"):
                    coordinator.insert([dataset.row(0), dataset.row(1)])


def test_coordinator_requires_addresses(dataset):
    with pytest.raises(ValueError):
        ShardCoordinator(dataset, [])


# ---------------------------------------------------------------------------
# fd hygiene
# ---------------------------------------------------------------------------
_FDS = "/proc/self/fd"
needs_procfs = pytest.mark.skipif(
    not os.path.isdir(_FDS), reason="needs /proc/self/fd"
)


def _open_fds():
    return set(os.listdir(_FDS))


@needs_procfs
def test_service_close_releases_wal_fd_and_is_idempotent(
    tmp_path, dataset
):
    before = _open_fds()
    service = SkylineService(dataset, storage_dir=tmp_path / "p")
    service.insert_rows([dataset.row(0)])  # WAL handle now open
    assert _open_fds() - before  # it really holds a descriptor
    service.close()
    service.close()  # double-close must be a no-op
    assert not (_open_fds() - before)


@needs_procfs
def test_recovered_service_close_releases_fds(tmp_path, dataset):
    with SkylineService(dataset, storage_dir=tmp_path / "p") as service:
        service.insert_rows([dataset.row(0)])
    before = _open_fds()
    recovered = SkylineService.recover(tmp_path / "p")
    assert recovered.version == 1
    recovered.close()
    assert not (_open_fds() - before)


@needs_procfs
def test_failstopped_service_close_releases_fds(tmp_path, dataset):
    from repro.exceptions import StorageUnavailable

    before = _open_fds()
    service = SkylineService(dataset, storage_dir=tmp_path / "p")
    plan = FaultPlan(rules=[
        FaultRule(site="wal.append", kind="enospc", at=(1,)),
    ])
    with faults.use(plan):
        with pytest.raises(StorageUnavailable):
            service.insert_rows([dataset.row(0)])
    assert service.health == "degraded"
    service.close()
    assert not (_open_fds() - before)


@needs_procfs
def test_follower_lifecycle_releases_fds(tmp_path, dataset):
    before = _open_fds()
    primary = SkylineService(dataset, storage_dir=tmp_path / "p")
    follower = Follower(LocalReplicationSource(primary), poll_interval=0.01)
    follower.sync()
    follower.start()
    primary.insert_rows([dataset.row(0)])
    assert follower.wait_for_version(1, timeout=10.0)
    follower.close()
    follower.close()  # idempotent
    primary.close()
    assert not (_open_fds() - before)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
def test_replication_cli_requires_smoke_flag(capsys):
    from repro.replication.__main__ import main

    with pytest.raises(SystemExit):
        main([])
