"""Integration tests for the benchmark harness (tiny configurations)."""

import pytest

from repro.bench.experiments import (
    DEFAULT_QUERY_COUNT,
    FIGURES,
    RunSpec,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
)
from repro.bench.measure import dataset_bytes, mean, stopwatch, timed
from repro.bench.report import render_figure, render_series
from repro.bench.runner import METHODS, run_figure, run_spec
from repro.core.preferences import Preference
from repro.datagen.generator import SyntheticConfig, generate


def tiny_spec(**overrides) -> RunSpec:
    defaults = dict(
        figure="figX",
        x_label="points",
        x=60,
        dataset_builder=lambda: generate(
            SyntheticConfig(
                num_points=60, num_numeric=2, num_nominal=2, cardinality=4,
                seed=3,
            )
        ),
        template_builder=lambda _d: Preference.empty(),
        order=2,
        query_count=3,
        ipo_k=2,
        seed=1,
    )
    defaults.update(overrides)
    return RunSpec(**defaults)


class TestMeasure:
    def test_timed(self):
        value, seconds = timed(lambda: 7)
        assert value == 7
        assert seconds >= 0

    def test_stopwatch(self):
        with stopwatch() as elapsed:
            pass
        assert len(elapsed) == 1

    def test_mean(self):
        assert mean([1.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_dataset_bytes(self):
        assert dataset_bytes(10, 5) == 200


class TestRunner:
    def test_run_spec_collects_all_panels(self):
        result = run_spec(tiny_spec())
        assert set(result.preprocessing_seconds) == set(METHODS)
        assert set(result.query_seconds) == set(METHODS)
        assert set(result.storage_bytes) == set(METHODS)
        assert result.num_points == 60
        assert 0 < result.sky_ratio <= 1
        assert 0 <= result.affect_ratio <= 1
        assert 0 < result.refined_sky_ratio <= 1
        assert result.mismatches == 0

    def test_run_spec_without_sfs_d(self):
        result = run_spec(tiny_spec(), include_sfs_d=False)
        assert result.query_seconds["SFS-D"] != result.query_seconds["SFS-A"]
        assert result.query_seconds["SFS-D"] != result.query_seconds["SFS-D"]  # NaN

    def test_run_figure_iterates_points(self):
        from repro.bench.experiments import FigureSpec

        figure = FigureSpec(
            "figX", "tiny", "points",
            (tiny_spec(x=40), tiny_spec(x=60)),
        )
        seen = []
        results = run_figure(figure, progress=seen.append)
        assert len(results) == 2
        assert len(seen) == 2


class TestExperimentSpecs:
    @pytest.mark.parametrize("fig_id", sorted(FIGURES))
    @pytest.mark.parametrize("scale", ["scaled", "paper"])
    def test_figures_define_sweeps(self, fig_id, scale):
        figure = FIGURES[fig_id](scale)
        assert len(figure.runs) >= 4
        assert all(r.figure == figure.figure for r in figure.runs)
        assert all(
            r.query_count == DEFAULT_QUERY_COUNT[scale] for r in figure.runs
        )

    def test_query_count_override(self):
        figure = figure4("scaled", 5)
        assert all(r.query_count == 5 for r in figure.runs)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            figure4("galactic")

    def test_fig5_sweeps_nominal_dimensions(self):
        xs = [r.x for r in figure5("scaled").runs]
        assert xs == [4, 5, 6, 7]

    def test_fig7_sweeps_order(self):
        assert [r.order for r in figure7("scaled").runs] == [1, 2, 3, 4]

    def test_fig8_uses_nursery(self):
        figure = figure8("scaled", 2)
        data = figure.runs[0].dataset_builder()
        assert len(data) == 12960
        assert [r.order for r in figure.runs] == [0, 1, 2, 3]

    def test_fig6_sweeps_cardinality(self):
        xs = [r.x for r in figure6("scaled").runs]
        assert xs == sorted(xs)


class TestReport:
    def test_render_figure_mentions_all_methods(self):
        results = [run_spec(tiny_spec())]
        text = render_figure("tiny figure", "points", results)
        for method in METHODS:
            assert method in text
        for panel in ("preprocessing", "query time", "storage", "proportions"):
            assert panel in text

    def test_render_series_is_tabular(self):
        results = [run_spec(tiny_spec())]
        series = render_series(results)
        lines = series.splitlines()
        assert lines[0].split("\t") == [
            "figure", "x", "metric", "method", "value",
        ]
        assert all(len(line.split("\t")) == 5 for line in lines[1:])


class TestCli:
    def test_main_runs_figure8_quickly(self, capsys):
        from repro.bench.__main__ import main

        code = main(["--figure", "8", "--queries", "1", "--no-sfs-d"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Nursery" in out
        assert "proportions" in out

    def test_main_writes_series(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        target = tmp_path / "series.tsv"
        code = main(
            [
                "--figure", "8", "--queries", "1", "--no-sfs-d",
                "--series", str(target),
            ]
        )
        assert code == 0
        assert target.exists()
        assert "query_s" in target.read_text()
