"""Unit tests for the presorted skyline list."""

import pytest

from repro.adaptive.sorted_skyline import SortedSkylineList


def make_list():
    """Two nominal dims at positions 2 and 3."""
    return SortedSkylineList(nominal_dims=(2, 3))


ROWS = {
    10: (1.0, 2.0, 0, 1),
    11: (0.5, 1.0, 1, 1),
    12: (2.0, 0.1, 0, 2),
    13: (0.1, 0.2, 2, 0),
}


def populate(lst):
    lst.insert(3.0, 10, ROWS[10])
    lst.insert(1.5, 11, ROWS[11])
    lst.insert(2.1, 12, ROWS[12])
    lst.insert(0.3, 13, ROWS[13])


class TestOrdering:
    def test_iteration_in_score_order(self):
        lst = make_list()
        populate(lst)
        assert [i for _s, i in lst] == [13, 11, 12, 10]

    def test_ids_in_order(self):
        lst = make_list()
        populate(lst)
        assert lst.ids_in_order == [13, 11, 12, 10]

    def test_ties_keep_all_entries(self):
        lst = make_list()
        lst.insert(1.0, 1, (0, 0, 0, 0))
        lst.insert(1.0, 2, (0, 0, 1, 1))
        lst.insert(1.0, 3, (0, 0, 2, 2))
        assert len(lst) == 3
        assert sorted(i for _s, i in lst) == [1, 2, 3]


class TestMembership:
    def test_contains_and_score(self):
        lst = make_list()
        populate(lst)
        assert 11 in lst
        assert 99 not in lst
        assert lst.score_of(11) == 1.5

    def test_duplicate_insert_rejected(self):
        lst = make_list()
        populate(lst)
        with pytest.raises(KeyError):
            lst.insert(9.9, 11, ROWS[11])

    def test_remove_returns_score(self):
        lst = make_list()
        populate(lst)
        assert lst.remove(12, ROWS[12]) == 2.1
        assert 12 not in lst
        assert len(lst) == 3

    def test_remove_missing_raises(self):
        lst = make_list()
        with pytest.raises(KeyError):
            lst.remove(5, (0, 0, 0, 0))

    def test_remove_with_tied_scores_removes_right_entry(self):
        lst = make_list()
        lst.insert(1.0, 1, (0, 0, 0, 0))
        lst.insert(1.0, 2, (0, 0, 1, 1))
        lst.insert(1.0, 3, (0, 0, 2, 2))
        lst.remove(2, (0, 0, 1, 1))
        assert sorted(i for _s, i in lst) == [1, 3]
        assert 2 not in lst


class TestInvertedIndex:
    def test_holders_of(self):
        lst = make_list()
        populate(lst)
        assert lst.holders_of(2, 0) == {10, 12}
        assert lst.holders_of(3, 1) == {10, 11}
        assert lst.holders_of(2, 9) == set()

    def test_members_with_values(self):
        lst = make_list()
        populate(lst)
        wanted = {2: {0}, 3: {0}}
        assert lst.members_with_values(wanted) == {10, 12, 13}

    def test_index_updated_on_remove(self):
        lst = make_list()
        populate(lst)
        lst.remove(10, ROWS[10])
        assert lst.holders_of(2, 0) == {12}

    def test_iter_excluding(self):
        lst = make_list()
        populate(lst)
        assert [i for _s, i in lst.iter_excluding({11, 10})] == [13, 12]

    def test_storage_model(self):
        lst = make_list()
        populate(lst)
        # 4 members * 12 bytes + 8 inverted entries * 4 bytes.
        assert lst.storage_bytes() == 4 * 12 + 8 * 4
