"""Tests for CSV import/export."""

import io

import pytest

from repro.core.io import read_csv, write_csv
from repro.exceptions import DatasetError


class TestReadCsv:
    def test_roundtrip(self, vacation_data, tmp_path):
        path = tmp_path / "packages.csv"
        write_csv(vacation_data, path)
        loaded = read_csv(vacation_data.schema, path)
        assert list(loaded) == list(vacation_data)

    def test_header_order_irrelevant(self, vacation_schema):
        text = io.StringIO(
            "Hotel-group,Price,Hotel-class\nT,1600,4\nH,3000,5\n"
        )
        data = read_csv(vacation_schema, text)
        assert data.row(0) == (1600, 4, "T")
        assert data.row(1) == (3000, 5, "H")

    def test_extra_columns_ignored(self, vacation_schema):
        text = io.StringIO(
            "Price,Hotel-class,Hotel-group,comment\n1600,4,T,nice\n"
        )
        data = read_csv(vacation_schema, text)
        assert data.row(0) == (1600, 4, "T")

    def test_missing_column_raises(self, vacation_schema):
        text = io.StringIO("Price,Hotel-class\n1600,4\n")
        with pytest.raises(DatasetError):
            read_csv(vacation_schema, text)

    def test_empty_input_raises(self, vacation_schema):
        with pytest.raises(DatasetError):
            read_csv(vacation_schema, io.StringIO(""))

    def test_blank_lines_tolerated(self, vacation_schema):
        text = io.StringIO(
            "Price,Hotel-class,Hotel-group\n1600,4,T\n\n , ,\n3000,5,H\n"
        )
        assert len(read_csv(vacation_schema, text)) == 2

    def test_bad_number_reports_line(self, vacation_schema):
        text = io.StringIO(
            "Price,Hotel-class,Hotel-group\ncheap,4,T\n"
        )
        with pytest.raises(DatasetError, match="line 2"):
            read_csv(vacation_schema, text)

    def test_value_outside_domain_raises(self, vacation_schema):
        text = io.StringIO("Price,Hotel-class,Hotel-group\n1,1,X\n")
        with pytest.raises(DatasetError):
            read_csv(vacation_schema, text)

    def test_floats_preserved(self, vacation_schema):
        text = io.StringIO(
            "Price,Hotel-class,Hotel-group\n1599.5,4,T\n"
        )
        assert read_csv(vacation_schema, text).row(0)[0] == 1599.5

    def test_custom_delimiter(self, vacation_schema):
        text = io.StringIO("Price;Hotel-class;Hotel-group\n1600;4;T\n")
        data = read_csv(vacation_schema, text, delimiter=";")
        assert data.row(0) == (1600, 4, "T")


class TestWriteCsv:
    def test_header_written(self, vacation_data):
        buffer = io.StringIO()
        write_csv(vacation_data, buffer)
        first = buffer.getvalue().splitlines()[0]
        assert first == "Price,Hotel-class,Hotel-group"

    def test_row_count(self, vacation_data):
        buffer = io.StringIO()
        write_csv(vacation_data, buffer)
        assert len(buffer.getvalue().strip().splitlines()) == 7
