"""Unit tests for attribute specs and schemas."""

import pytest

from repro.core.attributes import (
    AttributeKind,
    AttributeSpec,
    Schema,
    nominal,
    numeric_max,
    numeric_min,
    ordinal,
)
from repro.exceptions import SchemaError


class TestAttributeKind:
    def test_numeric_kinds_are_numeric(self):
        assert AttributeKind.NUMERIC_MIN.is_numeric
        assert AttributeKind.NUMERIC_MAX.is_numeric
        assert AttributeKind.ORDINAL.is_numeric

    def test_nominal_is_not_numeric(self):
        assert not AttributeKind.NOMINAL.is_numeric
        assert AttributeKind.NOMINAL.is_nominal

    def test_numeric_kinds_are_not_nominal(self):
        assert not AttributeKind.NUMERIC_MIN.is_nominal


class TestAttributeSpec:
    def test_numeric_min_canonical_passthrough(self):
        spec = numeric_min("Price")
        assert spec.canonical_value(42) == 42.0

    def test_numeric_max_canonical_negates(self):
        spec = numeric_max("Class")
        assert spec.canonical_value(4) == -4.0

    def test_ordinal_canonical_uses_position(self):
        spec = ordinal("health", ["good", "ok", "bad"])
        assert spec.canonical_value("good") == 0.0
        assert spec.canonical_value("bad") == 2.0

    def test_ordinal_canonical_rejects_unknown_value(self):
        spec = ordinal("health", ["good", "bad"])
        with pytest.raises(SchemaError):
            spec.canonical_value("mediocre")

    def test_nominal_has_cardinality(self):
        spec = nominal("Group", ["T", "H", "M"])
        assert spec.cardinality == 3

    def test_numeric_cardinality_undefined(self):
        with pytest.raises(SchemaError):
            numeric_min("Price").cardinality

    def test_nominal_canonical_undefined(self):
        with pytest.raises(SchemaError):
            nominal("Group", ["T"]).canonical_value("T")

    def test_numeric_rejects_domain(self):
        with pytest.raises(SchemaError):
            AttributeSpec("Price", AttributeKind.NUMERIC_MIN, ("a",))

    def test_nominal_requires_domain(self):
        with pytest.raises(SchemaError):
            AttributeSpec("Group", AttributeKind.NOMINAL)

    def test_empty_domain_rejected(self):
        with pytest.raises(SchemaError):
            nominal("Group", [])

    def test_duplicate_domain_values_rejected(self):
        with pytest.raises(SchemaError):
            nominal("Group", ["T", "T"])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            numeric_min("")


class TestSchema:
    def test_basic_lookup(self, vacation_schema):
        assert len(vacation_schema) == 3
        assert vacation_schema.index_of("Price") == 0
        assert vacation_schema.spec("Hotel-group").cardinality == 3
        assert "Price" in vacation_schema
        assert "Nonexistent" not in vacation_schema

    def test_names_in_order(self, vacation_schema):
        assert vacation_schema.names == ("Price", "Hotel-class", "Hotel-group")

    def test_nominal_indices(self, vacation_schema):
        assert vacation_schema.nominal_indices == (2,)
        assert vacation_schema.numeric_indices == (0, 1)
        assert vacation_schema.num_nominal == 1
        assert vacation_schema.nominal_names == ("Hotel-group",)

    def test_unknown_attribute_raises(self, vacation_schema):
        with pytest.raises(SchemaError):
            vacation_schema.index_of("Airline")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([numeric_min("x"), numeric_max("x")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_non_spec_entry_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["Price"])

    def test_equality_and_hash(self, vacation_schema):
        clone = Schema(list(vacation_schema))
        assert clone == vacation_schema
        assert hash(clone) == hash(vacation_schema)

    def test_validate_row_accepts_good_row(self, vacation_schema):
        vacation_schema.validate_row((1600, 4, "T"))

    def test_validate_row_wrong_width(self, vacation_schema):
        with pytest.raises(SchemaError):
            vacation_schema.validate_row((1600, 4))

    def test_validate_row_bad_nominal_value(self, vacation_schema):
        with pytest.raises(SchemaError):
            vacation_schema.validate_row((1600, 4, "X"))

    def test_validate_row_non_numeric_value(self, vacation_schema):
        with pytest.raises(SchemaError):
            vacation_schema.validate_row(("cheap", 4, "T"))

    def test_ordinal_participates_as_numeric(self):
        schema = Schema([ordinal("health", ["good", "bad"]), numeric_min("x")])
        assert schema.numeric_indices == (0, 1)
        assert schema.nominal_indices == ()
