"""Tests for IPO-tree serialisation."""

import json

import pytest

from repro.core.attributes import Schema, nominal, numeric_min
from repro.core.dataset import Dataset
from repro.core.preferences import Preference
from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
)
from repro.datagen.queries import generate_preferences
from repro.exceptions import IndexError_
from repro.ipo.serialize import (
    load_tree,
    preference_from_dict,
    preference_to_dict,
    save_tree,
    tree_from_dict,
    tree_to_dict,
)
from repro.ipo.tree import IPOTree


@pytest.fixture(scope="module")
def workload():
    return generate(
        SyntheticConfig(
            num_points=150, num_numeric=2, num_nominal=2, cardinality=4,
            seed=47,
        )
    )


class TestPreferenceDict:
    def test_roundtrip(self):
        pref = Preference({"A": ["x", "y"], "B": ["z"]})
        assert preference_from_dict(preference_to_dict(pref)) == pref

    def test_empty(self):
        assert preference_from_dict(preference_to_dict(Preference.empty())) == (
            Preference.empty()
        )


class TestTreeRoundtrip:
    @pytest.mark.parametrize("payload", ["set", "bitmap"])
    def test_dict_roundtrip_answers_identically(self, workload, payload):
        original = IPOTree.build(workload, payload=payload)
        restored = tree_from_dict(workload, tree_to_dict(original))
        for pref in generate_preferences(workload, 3, 8, seed=5):
            assert restored.query(pref) == original.query(pref)

    def test_template_survives(self, workload):
        template = frequent_value_template(workload)
        original = IPOTree.build(workload, template)
        restored = tree_from_dict(workload, tree_to_dict(original))
        assert restored.template == template

    def test_dict_is_json_serialisable(self, workload):
        original = IPOTree.build(workload)
        text = json.dumps(tree_to_dict(original))
        restored = tree_from_dict(workload, json.loads(text))
        assert restored.query() == original.query()

    def test_stats_preserved(self, workload):
        original = IPOTree.build(workload)
        restored = tree_from_dict(workload, tree_to_dict(original))
        assert restored.stats == original.stats
        assert restored.node_count() == original.node_count()

    def test_file_roundtrip(self, workload, tmp_path):
        original = IPOTree.build(workload)
        path = tmp_path / "tree.json"
        save_tree(original, path)
        restored = load_tree(workload, path)
        assert restored.query() == original.query()

    def test_ipo_tree_k_roundtrip(self, workload, tmp_path):
        original = IPOTree.build(workload, values_per_attribute=2)
        path = tmp_path / "tree_k.json"
        save_tree(original, path)
        restored = load_tree(workload, path)
        assert restored.candidates == original.candidates


class TestGuards:
    def test_wrong_schema_rejected(self, workload):
        data = tree_to_dict(IPOTree.build(workload))
        other = Dataset(
            Schema([numeric_min("x"), nominal("A", ["a", "b"])]),
            [(1, "a")],
        )
        with pytest.raises(IndexError_):
            tree_from_dict(other, data)

    def test_wrong_version_rejected(self, workload):
        data = tree_to_dict(IPOTree.build(workload))
        data["format_version"] = 99
        with pytest.raises(IndexError_):
            tree_from_dict(workload, data)
