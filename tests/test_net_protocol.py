"""Wire conformance: no byte sequence may crash or hang the server.

Every case in here throws malformed, hostile or just weird bytes at a
live server over a real socket and asserts the contract of
:mod:`repro.net.http`: the answer is always a *well-formed* HTTP error
(or a clean close) - never a traceback, never a hung connection - and
the server keeps serving afterwards.  The hypothesis property at the
bottom pins the JSON codecs as exact round-trips.
"""

from __future__ import annotations

import json
import socket

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.preferences import ImplicitPreference, Preference
from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
)
from repro.net import NetClient, ServerConfig, ServerThread
from repro.net.protocol import (
    CodecError,
    decode_preference,
    decode_serve_result,
    encode_preference,
    encode_serve_result,
)
from repro.serve.service import SkylineService


@pytest.fixture(scope="module")
def server():
    """One live server shared by the whole module (read-only traffic)."""
    dataset = generate(
        SyntheticConfig(
            num_points=150, num_numeric=2, num_nominal=2,
            cardinality=4, seed=3,
        )
    )
    service = SkylineService(
        dataset, frequent_value_template(dataset, 1), cache_capacity=32
    )
    config = ServerConfig(
        port=0, max_body_bytes=4096, max_header_bytes=2048,
        read_timeout=2.0, idle_timeout=5.0, access_log=False,
    )
    with ServerThread(service, config) as thread:
        yield thread


def raw_exchange(server, payload: bytes, timeout: float = 5.0) -> bytes:
    """Send raw bytes, half-close, and read everything the server says."""
    with socket.create_connection(
        (server.host, server.port), timeout=timeout
    ) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)


def parse_raw(response: bytes):
    """(status, headers, body) of one raw HTTP response."""
    head, _, body = response.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


def assert_error_shape(body: bytes, status: int) -> None:
    """Every error body is the uniform JSON error object."""
    payload = json.loads(body)
    assert set(payload) == {"error"}
    assert payload["error"]["status"] == status
    assert isinstance(payload["error"]["kind"], str)
    assert isinstance(payload["error"]["detail"], str)


def post(path: str, body: bytes, extra: str = "") -> bytes:
    """A framed POST request as raw bytes."""
    return (
        f"POST {path} HTTP/1.1\r\nHost: x\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n{extra}\r\n"
    ).encode() + body


def server_still_healthy(server) -> None:
    """The abuse du jour must not have taken the server down."""
    with NetClient(server.host, server.port) as client:
        assert client.healthz().status == 200


# ---------------------------------------------------------------------------
# malformed bodies (valid HTTP framing, broken JSON/shape)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "body",
    [
        b"{not json",
        b"[]",            # JSON but not an object
        b'"text"',
        b"null",
        b"\xff\xfe bad utf8",
        b'{"preference": 7}',
        b'{"preference": {"a": 5}}',
        b'{"preference": {"a": [["nested"]]}}',
        b'{"preference": {"a": ["dup", "dup"]}}',
        b'{"preference": null, "bogus_field": 1}',
        b'{"use_cache": "yes"}',
        b'{"route": 5}',
    ],
)
def test_malformed_query_bodies_answer_400(server, body):
    status, _, raw_body = parse_raw(raw_exchange(server, post("/query", body)))
    assert status == 400
    assert_error_shape(raw_body, 400)
    server_still_healthy(server)


def test_empty_body_is_the_empty_query(server):
    """POST /query with no body = template skyline (preference null)."""
    status, _, body = parse_raw(raw_exchange(server, post("/query", b"")))
    assert status == 200
    assert json.loads(body)["ids"]


# ---------------------------------------------------------------------------
# framing violations
# ---------------------------------------------------------------------------
def test_oversized_declared_body_is_413(server):
    raw = raw_exchange(
        server,
        f"POST /query HTTP/1.1\r\nContent-Length: 999999\r\n\r\n".encode(),
    )
    status, _, body = parse_raw(raw)
    assert status == 413
    assert_error_shape(body, 413)
    server_still_healthy(server)


def test_oversized_header_block_is_431(server):
    raw = raw_exchange(
        server,
        b"GET /healthz HTTP/1.1\r\n"
        + b"X-Filler: " + b"a" * 4096 + b"\r\n\r\n",
    )
    status, _, body = parse_raw(raw)
    assert status == 431
    assert_error_shape(body, 431)
    server_still_healthy(server)


def test_chunked_transfer_encoding_is_501(server):
    raw = raw_exchange(
        server,
        b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        b"0\r\n\r\n",
    )
    status, _, body = parse_raw(raw)
    assert status == 501
    assert_error_shape(body, 501)


@pytest.mark.parametrize("value", [b"abc", b"-5", b"1e3"])
def test_bad_content_length_is_400(server, value):
    raw = raw_exchange(
        server,
        b"POST /query HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n",
    )
    status, _, body = parse_raw(raw)
    assert status == 400
    assert_error_shape(body, 400)


def test_truncated_body_answers_400_torn_body(server):
    """A half-closed client mid-body still gets a well-formed 400."""
    status, _, body = parse_raw(raw_exchange(
        server,
        b"POST /query HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"pref",
    ))
    assert status == 400
    assert_error_shape(body, 400)
    assert json.loads(body)["error"]["kind"] == "torn-body"
    server_still_healthy(server)


def test_truncated_header_answers_400_torn_header(server):
    status, _, body = parse_raw(
        raw_exchange(server, b"POST /query HTTP/1.1\r\nContent-")
    )
    assert status == 400
    assert json.loads(body)["error"]["kind"] == "torn-header"
    server_still_healthy(server)


@pytest.mark.parametrize(
    "request_line",
    [
        b"BREW /query HTTP/1.1",        # unknown method
        b"GET /healthz HTTP/9.9",       # unknown version
        b"GET healthz HTTP/1.1",        # relative target
        b"GEThealthzHTTP/1.1",          # no spaces at all
        b"GET /healthz HTTP/1.1 extra", # four tokens
    ],
)
def test_bad_request_lines_answer_400(server, request_line):
    status, _, body = parse_raw(
        raw_exchange(server, request_line + b"\r\n\r\n")
    )
    assert status == 400
    assert_error_shape(body, 400)


def test_unknown_path_is_404_and_wrong_method_is_405(server):
    status, _, body = parse_raw(
        raw_exchange(server, b"GET /nope HTTP/1.1\r\n\r\n")
    )
    assert status == 404
    assert_error_shape(body, 404)

    status, headers, body = parse_raw(
        raw_exchange(server, b"GET /query HTTP/1.1\r\n\r\n")
    )
    assert status == 405
    assert headers.get("allow") == "POST"
    assert_error_shape(body, 405)


def test_random_garbage_never_crashes_or_hangs(server):
    """Arbitrary byte blobs get an error or a clean close, promptly."""
    import random

    rng = random.Random(1234)
    for _ in range(20):
        blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 400)))
        response = raw_exchange(server, blob)  # timeout would raise here
        if response:
            status, _, body = parse_raw(response)
            assert 400 <= status < 600
            assert_error_shape(body, status)
    server_still_healthy(server)


# ---------------------------------------------------------------------------
# pipelining and keep-alive
# ---------------------------------------------------------------------------
def test_pipelined_requests_answer_in_order(server):
    """Two requests in one write produce two in-order responses."""
    raw = raw_exchange(
        server,
        b"GET /healthz HTTP/1.1\r\n\r\n"
        + post("/query", b"{}", extra="Connection: close\r\n"),
    )
    first, _, rest = raw.partition(b"\r\n\r\n")
    assert first.startswith(b"HTTP/1.1 200")
    # The healthz body is followed by the /query response head.
    assert b"HTTP/1.1 200" in rest
    assert b'"ids"' in rest


def test_keep_alive_connection_serves_many_requests(server):
    with NetClient(server.host, server.port) as client:
        versions = {client.healthz().json["version"] for _ in range(5)}
    assert len(versions) == 1


def test_http10_defaults_to_close(server):
    raw = raw_exchange(server, b"GET /healthz HTTP/1.0\r\n\r\n")
    status, headers, _ = parse_raw(raw)
    assert status == 200
    assert headers["connection"] == "close"


# ---------------------------------------------------------------------------
# codec round-trips
# ---------------------------------------------------------------------------
_values = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126,
                           exclude_characters="<*"),
    min_size=1, max_size=8,
)
_chains = st.lists(_values, min_size=0, max_size=5, unique=True)
_preferences = st.dictionaries(
    st.text(min_size=1, max_size=10), _chains, max_size=4
).map(lambda d: Preference({k: ImplicitPreference(tuple(v))
                            for k, v in d.items()}))


@settings(max_examples=200, deadline=None)
@given(_preferences)
def test_preference_codec_round_trip(preference):
    assert decode_preference(encode_preference(preference)) == preference


def test_preference_none_round_trip():
    assert encode_preference(None) is None
    assert decode_preference(None) is None


def test_preference_string_chain_form_decodes():
    decoded = decode_preference({"Hotel-group": "T < M < *"})
    assert decoded == Preference(
        {"Hotel-group": ImplicitPreference(("T", "M"))}
    )


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=10_000),
             unique=True, max_size=20),
    st.sampled_from(["ipo", "mdc", "sfs", "cache", "batch"]),
    st.booleans(),
)
def test_serve_result_codec_round_trip(ids, route, cached):
    class _Result:
        pass

    result = _Result()
    result.ids = tuple(sorted(ids))
    result.route = route
    result.reason = "r"
    result.cached = cached
    result.seconds = 0.25
    result.version = 3
    wire = json.loads(json.dumps(encode_serve_result(result)))
    decoded = decode_serve_result(wire)
    assert decoded["ids"] == result.ids
    assert decoded["route"] == route
    assert decoded["cached"] is cached


@pytest.mark.parametrize(
    "payload",
    [
        {"ids": "nope"},
        {"ids": [1, True]},
        {"ids": [1], "surprise": 2},
    ],
)
def test_serve_result_decode_rejects_bad_shapes(payload):
    with pytest.raises(CodecError):
        decode_serve_result(payload)
