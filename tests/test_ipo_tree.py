"""Unit tests for IPO-tree construction."""

import pytest

from repro.core.preferences import Preference
from repro.core.skyline import skyline
from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
)
from repro.exceptions import PreferenceError, RefinementError, UnsupportedQueryError
from repro.ipo.tree import IPOTree


class TestTreeShape:
    def test_node_count_formula(self, two_nominal_data):
        """Full tree size is prod(c_i + 1) internal fanouts + root."""
        tree = IPOTree.build(two_nominal_data)
        # 1 + 4 + 4*4 for c = 3, m' = 2.
        assert tree.node_count() == 21

    def test_depth_matches_nominal_count(self, two_nominal_data):
        tree = IPOTree.build(two_nominal_data)
        node = tree.root
        depth = 0
        while node.phi_child is not None:
            node = node.phi_child
            depth += 1
        assert depth == 2  # m' = 2

    def test_no_nominal_dimensions_degenerates_to_root(self):
        data = generate(
            SyntheticConfig(num_points=50, num_numeric=3, num_nominal=0, seed=3)
        )
        tree = IPOTree.build(data)
        assert tree.node_count() == 1
        assert sorted(tree.query()) == sorted(skyline(data).ids)

    def test_walk_visits_every_node(self, two_nominal_data):
        tree = IPOTree.build(two_nominal_data)
        assert sum(1 for _ in tree.root.walk()) == tree.node_count()


class TestEnginesAgree:
    @pytest.mark.parametrize("use_template", [False, True])
    def test_direct_and_mdc_build_identical_payloads(self, use_template):
        data = generate(
            SyntheticConfig(
                num_points=120, num_numeric=2, num_nominal=2, cardinality=4,
                seed=11,
            )
        )
        template = frequent_value_template(data) if use_template else None
        direct = IPOTree.build(data, template, engine="direct")
        mdc = IPOTree.build(data, template, engine="mdc")
        assert direct.skyline_ids == mdc.skyline_ids
        for a, b in zip(direct.root.walk(), mdc.root.walk()):
            assert a.label == b.label
            assert a.disqualified == b.disqualified

    def test_unknown_engine_rejected(self, two_nominal_data):
        with pytest.raises(PreferenceError):
            IPOTree.build(two_nominal_data, engine="magic")

    def test_unknown_payload_rejected(self, two_nominal_data):
        with pytest.raises(PreferenceError):
            IPOTree.build(two_nominal_data, payload="parquet")


class TestTemplates:
    def test_root_stores_template_skyline(self, two_nominal_data):
        template = Preference({"Hotel-group": "T < *"})
        tree = IPOTree.build(two_nominal_data, template)
        expected = skyline(two_nominal_data, template=template).ids
        assert tree.skyline_ids == expected

    def test_query_must_refine_template(self, two_nominal_data):
        template = Preference({"Hotel-group": "T < *"})
        tree = IPOTree.build(two_nominal_data, template)
        with pytest.raises(RefinementError):
            tree.query(Preference({"Hotel-group": "M < *"}))

    def test_query_inherits_template_chain(self, two_nominal_data):
        template = Preference({"Hotel-group": "T < *"})
        tree = IPOTree.build(two_nominal_data, template)
        got = tree.query(Preference({"Airline": "G < *"}))
        expected = skyline(
            two_nominal_data,
            Preference({"Hotel-group": "T < *", "Airline": "G < *"}),
        ).ids
        assert tuple(got) == expected


class TestIPOTreeK:
    def test_restricted_tree_is_smaller(self):
        data = generate(
            SyntheticConfig(
                num_points=200, num_numeric=2, num_nominal=2, cardinality=8,
                seed=5,
            )
        )
        full = IPOTree.build(data)
        small = IPOTree.build(data, values_per_attribute=3)
        assert small.node_count() < full.node_count()
        # 1 + (3+1) + (3+1)^2 nodes.
        assert small.node_count() == 1 + 4 + 16

    def test_popular_values_answerable(self):
        data = generate(
            SyntheticConfig(
                num_points=200, num_numeric=2, num_nominal=2, cardinality=8,
                seed=5,
            )
        )
        small = IPOTree.build(data, values_per_attribute=3)
        popular = data.most_frequent("nom0", 1)[0]
        pref = Preference({"nom0": [popular]})
        assert small.query(pref) == sorted(
            skyline(data, pref).ids
        )

    def test_unpopular_value_raises(self):
        data = generate(
            SyntheticConfig(
                num_points=200, num_numeric=2, num_nominal=2, cardinality=8,
                seed=5,
            )
        )
        small = IPOTree.build(data, values_per_attribute=2)
        unpopular = data.most_frequent("nom0", 8)[-1]
        with pytest.raises(UnsupportedQueryError):
            small.query(Preference({"nom0": [unpopular]}))

    def test_template_values_always_materialised(self):
        data = generate(
            SyntheticConfig(
                num_points=200, num_numeric=2, num_nominal=1, cardinality=8,
                seed=5,
            )
        )
        # Template prefers the *least* frequent value; k=1 would
        # normally drop it.
        rare = data.most_frequent("nom0", 8)[-1]
        template = Preference({"nom0": [rare]})
        tree = IPOTree.build(data, template, values_per_attribute=1)
        # Template-only query stays answerable.
        assert tree.query() == list(tree.skyline_ids)

    def test_non_positive_k_rejected(self, two_nominal_data):
        with pytest.raises(PreferenceError):
            IPOTree.build(two_nominal_data, values_per_attribute=0)

    def test_per_attribute_mapping(self):
        data = generate(
            SyntheticConfig(
                num_points=100, num_numeric=2, num_nominal=2, cardinality=6,
                seed=9,
            )
        )
        tree = IPOTree.build(
            data, values_per_attribute={"nom0": 2, "nom1": 3}
        )
        assert len(tree.candidates[0]) == 2
        assert len(tree.candidates[1]) == 3


class TestStorageModel:
    def test_set_payload_counts_ids(self, two_nominal_data):
        tree = IPOTree.build(two_nominal_data)
        total_ids = sum(
            len(node.disqualified) for node in tree.root.walk()
        )
        assert tree.storage_bytes() == 16 * tree.node_count() + 4 * total_ids

    def test_bitmap_payload_counts_masks(self, two_nominal_data):
        tree = IPOTree.build(two_nominal_data, payload="bitmap")
        mask_bytes = (len(tree.skyline_ids) + 7) // 8
        assert (
            tree.storage_bytes()
            == (16 + mask_bytes) * tree.node_count()
        )

    def test_stats_recorded(self, two_nominal_data):
        tree = IPOTree.build(two_nominal_data, engine="direct")
        assert tree.stats.engine == "direct"
        assert tree.stats.node_count == 21
        assert tree.stats.skyline_size == 5
        assert tree.stats.build_seconds >= 0
