"""Semantic cache: canonical keys, LRU behaviour, counters."""

from __future__ import annotations

import threading

import pytest

from repro.core.attributes import Schema, nominal, numeric_min
from repro.core.preferences import Preference, canonical_cache_key
from repro.exceptions import PreferenceError, RefinementError
from repro.serve.cache import SemanticCache


class TestCanonicalCacheKey:
    def test_equal_objects_equal_keys(self, two_nominal_schema):
        a = Preference({"Hotel-group": "T < M < *"})
        b = Preference.parse("Hotel-group: T < M")
        assert canonical_cache_key(two_nominal_schema, a) == \
            canonical_cache_key(two_nominal_schema, b)

    def test_full_domain_chain_aliases_its_prefix(self, two_nominal_schema):
        full = Preference({"Hotel-group": "T < H < M"})
        prefix = Preference({"Hotel-group": "T < H"})
        assert canonical_cache_key(two_nominal_schema, full) == \
            canonical_cache_key(two_nominal_schema, prefix)

    def test_different_orders_different_keys(self, two_nominal_schema):
        a = Preference({"Hotel-group": "T < H"})
        b = Preference({"Hotel-group": "H < T"})
        c = Preference({"Hotel-group": "T"})
        keys = {
            canonical_cache_key(two_nominal_schema, p) for p in (a, b, c)
        }
        assert len(keys) == 3

    def test_template_inherited_vs_spelled_out(self, two_nominal_schema):
        template = Preference({"Hotel-group": "T < *"})
        inherited = canonical_cache_key(
            two_nominal_schema, Preference({"Airline": "G < *"}), template
        )
        spelled = canonical_cache_key(
            two_nominal_schema,
            Preference({"Airline": "G < *", "Hotel-group": "T < *"}),
            template,
        )
        assert inherited == spelled

    def test_empty_preference_and_none_agree(self, two_nominal_schema):
        assert canonical_cache_key(two_nominal_schema, None) == \
            canonical_cache_key(two_nominal_schema, Preference.empty()) == ()

    def test_single_value_domain_constrains_nothing(self):
        schema = Schema([numeric_min("p"), nominal("only", ["x"])])
        assert canonical_cache_key(
            schema, Preference({"only": "x < *"})
        ) == ()

    def test_key_is_hashable_and_sorted_by_name(self, two_nominal_schema):
        key = canonical_cache_key(
            two_nominal_schema,
            Preference({"Hotel-group": "T", "Airline": "G"}),
        )
        hash(key)
        assert [name for name, _ in key] == ["Airline", "Hotel-group"]

    def test_validates_against_schema(self, two_nominal_schema):
        with pytest.raises(PreferenceError):
            canonical_cache_key(
                two_nominal_schema, Preference({"Nope": "a < *"})
            )
        with pytest.raises(PreferenceError):
            canonical_cache_key(
                two_nominal_schema, Preference({"Hotel-group": "Z < *"})
            )

    def test_non_refining_preference_rejected(self, two_nominal_schema):
        template = Preference({"Hotel-group": "T < *"})
        with pytest.raises(RefinementError):
            canonical_cache_key(
                two_nominal_schema,
                Preference({"Hotel-group": "H < *"}),
                template,
            )


class TestSemanticCache:
    def test_miss_then_hit(self):
        cache = SemanticCache(capacity=4)
        assert cache.lookup("k") is None
        cache.store("k", (1, 2, 3))
        assert cache.lookup("k") == (1, 2, 3)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = SemanticCache(capacity=2)
        cache.store("a", (1,))
        cache.store("b", (2,))
        assert cache.lookup("a") == (1,)   # refreshes "a"
        cache.store("c", (3,))             # evicts "b", the LRU
        assert cache.lookup("b") is None
        assert cache.lookup("a") == (1,)
        assert cache.lookup("c") == (3,)
        assert cache.stats().evictions == 1

    def test_zero_capacity_disables_storage(self):
        cache = SemanticCache(capacity=0)
        cache.store("k", (1,))
        assert cache.lookup("k") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SemanticCache(capacity=-1)

    def test_bypass_counter(self):
        cache = SemanticCache(capacity=2)
        cache.record_bypass()
        assert cache.stats().bypasses == 1

    def test_stats_delta(self):
        cache = SemanticCache(capacity=2)
        cache.store("a", (1,))
        cache.lookup("a")
        before = cache.stats()
        cache.lookup("a")
        cache.lookup("missing")
        delta = cache.stats().delta(before)
        assert (delta.hits, delta.misses) == (1, 1)

    def test_clear_keeps_counters(self):
        cache = SemanticCache(capacity=2)
        cache.store("a", (1,))
        cache.lookup("a")
        cache.clear()
        assert cache.lookup("a") is None
        assert cache.stats().hits == 1

    def test_concurrent_access_is_consistent(self):
        cache = SemanticCache(capacity=8)
        errors = []

        def worker(tag: int) -> None:
            try:
                for i in range(200):
                    key = (tag, i % 16)
                    cache.store(key, (i,))
                    cache.lookup(key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats.lookups == 800
        assert len(cache) <= 8

    def test_stats_exact_under_thread_pool_hammering(self):
        """Regression: hit/miss/bypass counters stay exact under load.

        Every counter mutation shares the cache's one lock, so after a
        storm of concurrent lookups/stores/bypasses from a
        ThreadPoolExecutor the counters must satisfy exact arithmetic -
        no lost increments, no double counts.  Guaranteed hits use keys
        stored up front into an amply sized cache; guaranteed misses
        use keys that are never stored.
        """
        from concurrent.futures import ThreadPoolExecutor

        workers, rounds = 8, 300
        cache = SemanticCache(capacity=workers * 4)
        for tag in range(workers):
            cache.store(("hot", tag), (tag,))
        barrier = threading.Barrier(workers)

        def hammer(tag: int):
            barrier.wait()  # maximise interleaving
            for i in range(rounds):
                assert cache.lookup(("hot", tag)) == (tag,)
                assert cache.lookup(("never-stored", tag, i)) is None
                cache.record_bypass()
                cache.store(("hot", tag), (tag,))  # refresh, no eviction
            return tag

        with ThreadPoolExecutor(max_workers=workers) as pool:
            assert sorted(pool.map(hammer, range(workers))) == list(
                range(workers)
            )

        stats = cache.stats()
        assert stats.hits == workers * rounds
        assert stats.misses == workers * rounds
        assert stats.bypasses == workers * rounds
        assert stats.lookups == stats.hits + stats.misses
        assert stats.evictions == 0
        assert stats.size == workers
        assert stats.hit_rate == 0.5

    def test_stats_snapshots_consistent_while_hammered(self):
        """stats() taken mid-storm never shows torn counter relations."""
        from concurrent.futures import ThreadPoolExecutor

        cache = SemanticCache(capacity=4)
        stop = threading.Event()

        def mutate():
            i = 0
            while not stop.is_set():
                cache.store(("k", i % 8), (i,))
                cache.lookup(("k", i % 8))
                i += 1

        def observe():
            snapshots = []
            while not stop.is_set():
                snapshots.append(cache.stats())
            return snapshots

        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = [pool.submit(mutate), pool.submit(mutate)]
            observer = pool.submit(observe)
            import time as _time

            _time.sleep(0.2)
            stop.set()
            for f in futures:
                f.result()
            snapshots = observer.result()

        assert snapshots
        for snap in snapshots:
            assert snap.lookups == snap.hits + snap.misses
            assert 0 <= snap.size <= snap.capacity
