"""Semantic cache: canonical keys, LRU behaviour, counters, versioning.

Also home of the serving layer's torn-read regression: a thread pool
interleaving ``query`` / ``insert_rows`` / ``delete_rows`` on one
:class:`SkylineService`, where every returned skyline must equal a
from-scratch rebuild at *some* data version.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.attributes import Schema, nominal, numeric_min
from repro.core.preferences import Preference, canonical_cache_key
from repro.exceptions import PreferenceError, RefinementError
from repro.serve.cache import SemanticCache


class TestCanonicalCacheKey:
    def test_equal_objects_equal_keys(self, two_nominal_schema):
        a = Preference({"Hotel-group": "T < M < *"})
        b = Preference.parse("Hotel-group: T < M")
        assert canonical_cache_key(two_nominal_schema, a) == \
            canonical_cache_key(two_nominal_schema, b)

    def test_full_domain_chain_aliases_its_prefix(self, two_nominal_schema):
        full = Preference({"Hotel-group": "T < H < M"})
        prefix = Preference({"Hotel-group": "T < H"})
        assert canonical_cache_key(two_nominal_schema, full) == \
            canonical_cache_key(two_nominal_schema, prefix)

    def test_different_orders_different_keys(self, two_nominal_schema):
        a = Preference({"Hotel-group": "T < H"})
        b = Preference({"Hotel-group": "H < T"})
        c = Preference({"Hotel-group": "T"})
        keys = {
            canonical_cache_key(two_nominal_schema, p) for p in (a, b, c)
        }
        assert len(keys) == 3

    def test_template_inherited_vs_spelled_out(self, two_nominal_schema):
        template = Preference({"Hotel-group": "T < *"})
        inherited = canonical_cache_key(
            two_nominal_schema, Preference({"Airline": "G < *"}), template
        )
        spelled = canonical_cache_key(
            two_nominal_schema,
            Preference({"Airline": "G < *", "Hotel-group": "T < *"}),
            template,
        )
        assert inherited == spelled

    def test_empty_preference_and_none_agree(self, two_nominal_schema):
        assert canonical_cache_key(two_nominal_schema, None) == \
            canonical_cache_key(two_nominal_schema, Preference.empty()) == ()

    def test_single_value_domain_constrains_nothing(self):
        schema = Schema([numeric_min("p"), nominal("only", ["x"])])
        assert canonical_cache_key(
            schema, Preference({"only": "x < *"})
        ) == ()

    def test_key_is_hashable_and_sorted_by_name(self, two_nominal_schema):
        key = canonical_cache_key(
            two_nominal_schema,
            Preference({"Hotel-group": "T", "Airline": "G"}),
        )
        hash(key)
        assert [name for name, _ in key] == ["Airline", "Hotel-group"]

    def test_validates_against_schema(self, two_nominal_schema):
        with pytest.raises(PreferenceError):
            canonical_cache_key(
                two_nominal_schema, Preference({"Nope": "a < *"})
            )
        with pytest.raises(PreferenceError):
            canonical_cache_key(
                two_nominal_schema, Preference({"Hotel-group": "Z < *"})
            )

    def test_non_refining_preference_rejected(self, two_nominal_schema):
        template = Preference({"Hotel-group": "T < *"})
        with pytest.raises(RefinementError):
            canonical_cache_key(
                two_nominal_schema,
                Preference({"Hotel-group": "H < *"}),
                template,
            )


class TestSemanticCache:
    def test_miss_then_hit(self):
        cache = SemanticCache(capacity=4)
        assert cache.lookup("k") is None
        cache.store("k", (1, 2, 3))
        assert cache.lookup("k") == (1, 2, 3)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = SemanticCache(capacity=2)
        cache.store("a", (1,))
        cache.store("b", (2,))
        assert cache.lookup("a") == (1,)   # refreshes "a"
        cache.store("c", (3,))             # evicts "b", the LRU
        assert cache.lookup("b") is None
        assert cache.lookup("a") == (1,)
        assert cache.lookup("c") == (3,)
        assert cache.stats().evictions == 1

    def test_zero_capacity_disables_storage(self):
        cache = SemanticCache(capacity=0)
        cache.store("k", (1,))
        assert cache.lookup("k") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SemanticCache(capacity=-1)

    def test_bypass_counter(self):
        cache = SemanticCache(capacity=2)
        cache.record_bypass()
        assert cache.stats().bypasses == 1

    def test_stats_delta(self):
        cache = SemanticCache(capacity=2)
        cache.store("a", (1,))
        cache.lookup("a")
        before = cache.stats()
        cache.lookup("a")
        cache.lookup("missing")
        delta = cache.stats().delta(before)
        assert (delta.hits, delta.misses) == (1, 1)

    def test_clear_keeps_counters(self):
        cache = SemanticCache(capacity=2)
        cache.store("a", (1,))
        cache.lookup("a")
        cache.clear()
        assert cache.lookup("a") is None
        assert cache.stats().hits == 1

    def test_concurrent_access_is_consistent(self):
        cache = SemanticCache(capacity=8)
        errors = []

        def worker(tag: int) -> None:
            try:
                for i in range(200):
                    key = (tag, i % 16)
                    cache.store(key, (i,))
                    cache.lookup(key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats.lookups == 800
        assert len(cache) <= 8

    def test_stats_exact_under_thread_pool_hammering(self):
        """Regression: hit/miss/bypass counters stay exact under load.

        Every counter mutation shares the cache's one lock, so after a
        storm of concurrent lookups/stores/bypasses from a
        ThreadPoolExecutor the counters must satisfy exact arithmetic -
        no lost increments, no double counts.  Guaranteed hits use keys
        stored up front into an amply sized cache; guaranteed misses
        use keys that are never stored.
        """
        from concurrent.futures import ThreadPoolExecutor

        workers, rounds = 8, 300
        cache = SemanticCache(capacity=workers * 4)
        for tag in range(workers):
            cache.store(("hot", tag), (tag,))
        barrier = threading.Barrier(workers)

        def hammer(tag: int):
            barrier.wait()  # maximise interleaving
            for i in range(rounds):
                assert cache.lookup(("hot", tag)) == (tag,)
                assert cache.lookup(("never-stored", tag, i)) is None
                cache.record_bypass()
                cache.store(("hot", tag), (tag,))  # refresh, no eviction
            return tag

        with ThreadPoolExecutor(max_workers=workers) as pool:
            assert sorted(pool.map(hammer, range(workers))) == list(
                range(workers)
            )

        stats = cache.stats()
        assert stats.hits == workers * rounds
        assert stats.misses == workers * rounds
        assert stats.bypasses == workers * rounds
        assert stats.lookups == stats.hits + stats.misses
        assert stats.evictions == 0
        assert stats.size == workers
        assert stats.hit_rate == 0.5

    def test_stats_snapshots_consistent_while_hammered(self):
        """stats() taken mid-storm never shows torn counter relations."""
        from concurrent.futures import ThreadPoolExecutor

        cache = SemanticCache(capacity=4)
        stop = threading.Event()

        def mutate():
            i = 0
            while not stop.is_set():
                cache.store(("k", i % 8), (i,))
                cache.lookup(("k", i % 8))
                i += 1

        def observe():
            snapshots = []
            while not stop.is_set():
                snapshots.append(cache.stats())
            return snapshots

        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = [pool.submit(mutate), pool.submit(mutate)]
            observer = pool.submit(observe)
            import time as _time

            _time.sleep(0.2)
            stop.set()
            for f in futures:
                f.result()
            snapshots = observer.result()

        assert snapshots
        for snap in snapshots:
            assert snap.lookups == snap.hits + snap.misses
            assert 0 <= snap.size <= snap.capacity


class TestVersionedRevision:
    def test_revise_patches_drops_and_retains(self):
        cache = SemanticCache(capacity=8)
        cache.store("keep", (1, 2))
        cache.store("patch", (1, 3))
        cache.store("drop", (4,))

        def fn(key, ids):
            if key == "drop":
                return None
            if key == "patch":
                return (1, 3, 9)
            return ids

        assert cache.revise(fn) == (1, 1, 1)
        assert cache.lookup("keep") == (1, 2)
        assert cache.lookup("patch") == (1, 3, 9)
        assert cache.lookup("drop") is None
        stats = cache.stats()
        assert stats.version == 1
        assert stats.patches == 1
        assert stats.invalidations == 1

    def test_store_rejects_answers_from_a_stale_version(self):
        cache = SemanticCache(capacity=4)
        version = cache.version
        cache.revise(lambda key, ids: ids)  # data moved on
        cache.store("k", (1,), version=version)
        assert cache.lookup("k") is None
        assert cache.stats().stale_stores == 1
        cache.store("k", (2,), version=cache.version)
        assert cache.lookup("k") == (2,)

    def test_unversioned_store_is_always_accepted(self):
        cache = SemanticCache(capacity=4)
        cache.revise(lambda key, ids: ids)
        cache.store("k", (1,))
        assert cache.lookup("k") == (1,)

    def test_fenced_store_counts_stale_only_never_invalidation(self):
        """Regression: losing the store/revise race must not double-count.

        A revise() that drops an entry counts one invalidation; the
        in-flight store that then loses the version fence counts one
        stale store - and nothing else.  The two counters must move
        independently (one event each), not both for the same store.
        """
        cache = SemanticCache(capacity=4)
        cache.store("k", (1,), version=cache.version)
        before = cache.stats()
        # The revise drops the entry (one invalidation)...
        cache.revise(lambda key, ids: None)
        mid = cache.stats()
        assert mid.invalidations == before.invalidations + 1
        assert mid.stale_stores == before.stale_stores
        # ... and the racing store, fenced out, is stale - only stale.
        accepted = cache.store("k", (1,), version=before.version)
        after = cache.stats()
        assert accepted is False
        assert after.stale_stores == mid.stale_stores + 1
        assert after.invalidations == mid.invalidations
        assert after.stores == mid.stores

    def test_store_and_revise_counters_conserve_under_hammering(self):
        """Counter conservation under a store/revise/lookup storm.

        Tracks every call's outcome from the caller side and asserts
        the cache's own counters add up exactly afterwards:
        ``hits + misses`` equals the lookups issued, every store
        attempt landed in exactly one of accepted/stale, and every
        entry a revision examined landed in exactly one of
        retained/patched/invalidated.
        """
        from concurrent.futures import ThreadPoolExecutor

        workers, rounds = 6, 200
        cache = SemanticCache(capacity=64)
        barrier = threading.Barrier(workers)
        totals_lock = threading.Lock()
        totals = {
            "lookups": 0, "stores": 0, "accepted": 0,
            "retained": 0, "patched": 0, "invalidated": 0, "revises": 0,
        }

        def hammer(tag: int):
            rng = random.Random(tag)
            local = dict.fromkeys(totals, 0)
            barrier.wait()
            for i in range(rounds):
                action = rng.random()
                if action < 0.5:
                    # Versioned store racing concurrent revises: read
                    # the version first so some stores lose the fence.
                    version = cache.version
                    if rng.random() < 0.3:
                        cache.revise(lambda key, ids: ids)  # move data on
                        local["revises"] += 1
                    accepted = cache.store(
                        (tag, i % 8), (i,), version=version
                    )
                    local["stores"] += 1
                    local["accepted"] += 1 if accepted else 0
                elif action < 0.8:
                    cache.lookup((tag, rng.randrange(16)))
                    local["lookups"] += 1
                else:
                    outcome = rng.random()
                    retained, patched, invalidated = cache.revise(
                        lambda key, ids: (
                            None if outcome < 0.2
                            else tuple(ids) + (999,) if outcome < 0.5
                            else ids
                        )
                    )
                    local["revises"] += 1
                    local["retained"] += retained
                    local["patched"] += patched
                    local["invalidated"] += invalidated
            with totals_lock:
                for key, value in local.items():
                    totals[key] += value
            return tag

        with ThreadPoolExecutor(max_workers=workers) as pool:
            assert sorted(pool.map(hammer, range(workers))) == list(
                range(workers)
            )

        stats = cache.stats()
        assert stats.hits + stats.misses == totals["lookups"]
        # Every store attempt: accepted xor fenced - no loss, no double.
        assert stats.stores == totals["accepted"]
        assert stats.stores + stats.stale_stores == totals["stores"]
        # Every revised entry: retained xor patched xor invalidated.
        # The identity revises in the store branch only retain, so the
        # captured patch/invalidation outcomes are exhaustive.
        assert stats.patches == totals["patched"]
        assert stats.invalidations == totals["invalidated"]
        assert stats.version == totals["revises"]
        assert (
            stats.revised
            >= totals["retained"] + totals["patched"] + totals["invalidated"]
        )
        # Size accounting: what's in the map is what was stored and
        # neither evicted nor invalidated (refreshing stores re-count).
        assert 0 <= stats.size <= stats.capacity


class TestInterleavedUpdatesAndQueries:
    """The serving layer's no-torn-reads contract under churn."""

    PREF_COUNT = 4
    MUTATIONS = 30

    @pytest.mark.parametrize("mode", ["single", "batch"])
    def test_every_answer_matches_a_rebuild_at_some_version(self, mode):
        """Hammer query/insert_rows/delete_rows; answers stay versioned.

        A mutator thread applies single-row inserts and deletes while
        query threads read continuously (cached and uncached).  The
        mutator maintains a shadow copy of the live rows and records,
        per data version, the brute-force skyline of every test
        preference.  Every (preference, answer, version) triple any
        query thread ever observed must equal the recorded rebuild at
        exactly that version - a torn read (a scan overlapping a
        mutation, or a cache entry surviving un-revised) would surface
        as an answer matching *no* version.

        The ``batch`` mode drives ``evaluate_batch`` instead of
        ``query`` - the regression case for plans and executions
        straddling a mutation (they must share one read section, or a
        stale structure's answer gets stamped with the new version and
        poisons the cache).
        """
        from concurrent.futures import ThreadPoolExecutor

        from repro.core.dataset import Dataset
        from repro.core.skyline import skyline
        from repro.datagen import SyntheticConfig, generate
        from repro.datagen.generator import frequent_value_template
        from repro.datagen.queries import generate_preferences
        from repro.serve import SkylineService

        base = generate(
            SyntheticConfig(
                num_points=150, num_numeric=2, num_nominal=2,
                cardinality=4, seed=13,
            )
        )
        extra = generate(
            SyntheticConfig(
                num_points=80, num_numeric=2, num_nominal=2,
                cardinality=4, seed=14,
            )
        )
        template = frequent_value_template(base)
        prefs = generate_preferences(
            base, order=2, count=self.PREF_COUNT, template=template, seed=5
        )
        service = SkylineService(base, template, cache_capacity=32)

        shadow = {i: base.row(i) for i in range(len(base))}
        oracle = {}

        def record(version):
            ordered = sorted(shadow)
            snap = Dataset(base.schema, [shadow[i] for i in ordered])
            oracle[version] = {
                k: tuple(
                    sorted(
                        ordered[pos]
                        for pos in skyline(
                            snap, pref, template=template
                        ).ids
                    )
                )
                for k, pref in enumerate(prefs)
            }

        record(0)
        done = threading.Event()
        barrier = threading.Barrier(4)

        def mutate():
            barrier.wait()
            rng = random.Random(99)
            try:
                for _ in range(self.MUTATIONS):
                    if rng.random() < 0.5 and len(shadow) > 20:
                        victim = rng.choice(sorted(shadow))
                        report = service.delete_rows([victim])
                        del shadow[victim]
                    else:
                        row = extra.row(rng.randrange(len(extra)))
                        report = service.insert_rows([row])
                        shadow[report.point_ids[0]] = row
                    record(report.version)
            finally:
                done.set()

        def query_worker(seed):
            barrier.wait()
            rng = random.Random(seed)
            observed = []
            while not done.is_set():
                use_cache = bool(rng.getrandbits(1))
                if mode == "single":
                    k = rng.randrange(len(prefs))
                    result = service.query(prefs[k], use_cache=use_cache)
                    observed.append((k, result.version, result.ids))
                else:
                    picks = [
                        rng.randrange(len(prefs)) for _ in range(3)
                    ]
                    results = service.evaluate_batch(
                        [prefs[k] for k in picks], use_cache=use_cache
                    )
                    observed.extend(
                        (k, result.version, result.ids)
                        for k, result in zip(picks, results)
                    )
            return observed

        with ThreadPoolExecutor(max_workers=4) as pool:
            mutator = pool.submit(mutate)
            workers = [pool.submit(query_worker, s) for s in (1, 2, 3)]
            mutator.result()
            observations = [obs for w in workers for obs in w.result()]

        assert observations, "query threads never ran"
        torn = [
            (k, version, ids)
            for k, version, ids in observations
            if oracle[version][k] != ids
        ]
        assert not torn, (
            f"{len(torn)} answers matched no rebuild at their version; "
            f"first: {torn[0]}"
        )
        # The storm must actually have interleaved with mutations.
        assert len({version for _k, version, _ids in observations}) > 1
