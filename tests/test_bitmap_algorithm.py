"""Tests for the bitmap skyline algorithm (Tan et al., VLDB'01)."""

import pytest

from repro.algorithms.bitmap import bitmap_skyline
from repro.algorithms.bruteforce import bruteforce_skyline
from repro.core.dataset import Dataset
from repro.core.dominance import RankTable
from repro.core.preferences import Preference
from repro.datagen.generator import SyntheticConfig, generate
from repro.datagen.queries import generate_preferences


class TestPaperExamples:
    @pytest.mark.parametrize(
        "pref, expected",
        [
            (None, {0, 2, 4, 5}),  # Bob
            (Preference({"Hotel-group": "T < M < *"}), {0, 2}),  # Alice
            (Preference({"Hotel-group": "H < M < T"}), {0, 2, 4}),  # David
        ],
    )
    def test_table2_customers(self, vacation_data, pref, expected):
        table = RankTable.compile(vacation_data.schema, pref)
        result = bitmap_skyline(
            vacation_data.canonical_rows, vacation_data.ids, table
        )
        assert set(result) == expected


class TestEquivalence:
    @pytest.mark.parametrize("order", [0, 1, 3])
    @pytest.mark.parametrize(
        "distribution", ["independent", "anticorrelated"]
    )
    def test_matches_bruteforce(self, distribution, order):
        data = generate(
            SyntheticConfig(
                num_points=150,
                num_numeric=2,
                num_nominal=2,
                cardinality=4,
                distribution=distribution,
                seed=3,
            )
        )
        for pref in generate_preferences(data, order, 4, seed=order):
            table = RankTable.compile(data.schema, pref)
            expected = set(
                bruteforce_skyline(data.canonical_rows, data.ids, table)
            )
            got = set(bitmap_skyline(data.canonical_rows, data.ids, table))
            assert got == expected

    def test_duplicates_survive(self, vacation_schema):
        data = Dataset(vacation_schema, [(1, 5, "T")] * 3)
        table = RankTable.compile(vacation_schema)
        assert sorted(
            bitmap_skyline(data.canonical_rows, data.ids, table)
        ) == [0, 1, 2]

    def test_empty_input(self, vacation_data):
        table = RankTable.compile(vacation_data.schema)
        assert bitmap_skyline(vacation_data.canonical_rows, [], table) == []

    def test_incomparable_nominals_all_survive(self, vacation_schema):
        """Same numerics, distinct unlisted nominal values: no dominance."""
        data = Dataset(
            vacation_schema, [(1, 5, "T"), (1, 5, "H"), (1, 5, "M")]
        )
        table = RankTable.compile(vacation_schema)
        assert sorted(
            bitmap_skyline(data.canonical_rows, data.ids, table)
        ) == [0, 1, 2]

    def test_subset_of_ids(self, vacation_data):
        table = RankTable.compile(vacation_data.schema)
        assert sorted(
            bitmap_skyline(vacation_data.canonical_rows, [1, 3, 5], table)
        ) == [1, 3, 5]
