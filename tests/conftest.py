"""Shared fixtures: the paper's running examples and small workloads."""

from __future__ import annotations

import pytest

from repro.core.attributes import Schema, nominal, numeric_max, numeric_min
from repro.core.dataset import Dataset
from repro.core.preferences import Preference
from repro.datagen.generator import SyntheticConfig, generate

#: Point names used throughout the paper: package a is row 0, etc.
PACKAGE_NAMES = "abcdef"


@pytest.fixture
def vacation_schema() -> Schema:
    """Table 1's schema: Price (min), Hotel-class (max), Hotel-group."""
    return Schema(
        [
            numeric_min("Price"),
            numeric_max("Hotel-class"),
            nominal("Hotel-group", ["T", "H", "M"]),
        ]
    )


@pytest.fixture
def vacation_data(vacation_schema: Schema) -> Dataset:
    """Table 1's six vacation packages."""
    return Dataset(
        vacation_schema,
        [
            (1600, 4, "T"),
            (2400, 1, "T"),
            (3000, 5, "H"),
            (3600, 4, "H"),
            (2400, 2, "M"),
            (3000, 3, "M"),
        ],
    )


@pytest.fixture
def two_nominal_schema() -> Schema:
    """Table 3's schema with the extra Airline attribute."""
    return Schema(
        [
            numeric_min("Price"),
            numeric_max("Hotel-class"),
            nominal("Hotel-group", ["T", "H", "M"]),
            nominal("Airline", ["G", "R", "W"]),
        ]
    )


@pytest.fixture
def two_nominal_data(two_nominal_schema: Schema) -> Dataset:
    """Table 3's six packages (two nominal attributes)."""
    return Dataset(
        two_nominal_schema,
        [
            (1600, 4, "T", "G"),
            (2400, 1, "T", "G"),
            (3000, 5, "H", "G"),
            (3600, 4, "H", "R"),
            (2400, 2, "M", "R"),
            (3000, 3, "M", "W"),
        ],
    )


@pytest.fixture
def small_synthetic() -> Dataset:
    """A deterministic 150-point anti-correlated workload."""
    return generate(
        SyntheticConfig(
            num_points=150,
            num_numeric=2,
            num_nominal=2,
            cardinality=4,
            seed=42,
        )
    )


def names_of(ids) -> set:
    """Map row ids of the six-package tables to the paper's letters."""
    return {PACKAGE_NAMES[i] for i in ids}


def preference(**kwargs) -> Preference:
    """Shorthand: ``preference(**{"Hotel-group": "T<M<*"})``."""
    return Preference(kwargs)
