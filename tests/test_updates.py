"""Unit and integration tests for repro.updates and the mutable service.

The metamorphic (hypothesis) suite lives in
``tests/test_updates_properties.py``; this file pins the concrete
behaviours: DynamicDataset bookkeeping, IncrementalSkyline effects,
IPOTree.refresh equivalence, versioned cache revision, and the
SkylineService mutation API against a brute-force oracle.
"""

from __future__ import annotations

import random

import pytest

from repro.core.attributes import Schema, nominal, numeric_min
from repro.core.dataset import Dataset
from repro.core.preferences import Preference
from repro.core.skyline import skyline
from repro.datagen import SyntheticConfig, generate
from repro.datagen.generator import frequent_value_template
from repro.datagen.queries import generate_preferences
from repro.engine import available_backends
from repro.exceptions import DatasetError, ReproError
from repro.ipo.tree import IPOTree
from repro.serve import PlannerConfig, SkylineService
from repro.updates import DynamicDataset, IncrementalSkyline

SCHEMA = Schema(
    [numeric_min("price"), numeric_min("dist"), nominal("g", ["T", "H", "M"])]
)


def small_dynamic() -> DynamicDataset:
    return DynamicDataset.from_dataset(
        Dataset(
            SCHEMA,
            [(10, 5, "T"), (8, 7, "H"), (12, 4, "M"), (9, 9, "T")],
        )
    )


class TestDynamicDataset:
    def test_append_assigns_fresh_ids_and_bumps_version(self):
        data = small_dynamic()
        assert data.version == 0 and len(data) == 4
        assert data.append([(7, 7, "M"), (6, 8, "T")]) == [4, 5]
        assert data.version == 1
        assert len(data) == 6
        assert data.row(4) == (7, 7, "M")

    def test_append_is_all_or_nothing(self):
        data = small_dynamic()
        with pytest.raises(DatasetError, match="row 5"):
            data.append([(1, 1, "T"), (1, 1, "NOPE")])
        assert len(data) == 4 and data.version == 0

    def test_append_validates_row_width(self):
        data = small_dynamic()
        with pytest.raises(DatasetError, match="has 2 values"):
            data.append([(1, 1)])

    def test_delete_tombstones_but_keeps_ids_stable(self):
        data = small_dynamic()
        data.delete([1])
        assert not data.is_live(1)
        assert data.ids == [0, 2, 3]
        assert len(data) == 3
        assert data.num_slots == 4
        assert data.deleted_fraction == 0.25
        # Remaining ids still address the same rows.
        assert data.row(2) == (12, 4, "M")

    def test_delete_rejects_dead_unknown_and_duplicate_ids(self):
        data = small_dynamic()
        data.delete([0])
        with pytest.raises(DatasetError):
            data.delete([0])  # already dead
        with pytest.raises(DatasetError):
            data.delete([99])
        with pytest.raises(DatasetError, match="duplicate"):
            data.delete([1, 1])
        # Failed batches left no tombstones behind.
        assert data.ids == [1, 2, 3]

    def test_compact_reassigns_ids_in_order(self):
        data = small_dynamic()
        data.delete([0, 2])
        remap = data.compact()
        assert remap == {1: 0, 3: 1}
        assert data.ids == [0, 1]
        assert data.row(0) == (8, 7, "H")
        assert data.deleted_fraction == 0.0

    def test_compact_on_clean_data_is_identity(self):
        data = small_dynamic()
        version = data.version
        assert data.compact() == {0: 0, 1: 1, 2: 2, 3: 3}
        assert data.version == version  # no mutation happened

    def test_snapshot_positions_translate_via_snapshot_ids(self):
        data = small_dynamic()
        data.delete([1])
        data.append([(1, 1, "H")])
        snap = data.snapshot()
        ids = data.snapshot_ids()
        assert len(snap) == 4
        assert ids == (0, 2, 3, 4)
        for pos, point_id in enumerate(ids):
            assert snap.row(pos) == data.row(point_id)
        assert data.snapshot() is snap  # version-cached

    def test_snapshot_reuses_encodings(self):
        data = small_dynamic()
        snap = data.snapshot()
        assert snap.canonical(0) == data.canonical(0)


class TestIncrementalSkyline:
    def test_insert_requires_the_row_to_exist(self):
        data = small_dynamic()
        sky = IncrementalSkyline(data)
        with pytest.raises(DatasetError):
            sky.insert(99)

    def test_delete_requires_the_tombstone_first(self):
        data = small_dynamic()
        sky = IncrementalSkyline(data)
        with pytest.raises(DatasetError):
            sky.delete(0)

    def test_insert_effects_enter_and_evict(self):
        data = small_dynamic()
        sky = IncrementalSkyline(data, Preference({"g": "T < *"}))
        before = sky.ids
        # A point dominated by (10, 5, T): no membership change.
        pid = data.append([(11, 6, "T")])[0]
        effect = sky.insert(pid)
        assert not effect.changed and sky.ids == before
        # A point dominating (10, 5, T) and (9, 9, T): evicts both.
        pid = data.append([(8, 4, "T")])[0]
        effect = sky.insert(pid)
        assert effect.entered == (pid,)
        assert 0 in effect.evicted
        assert pid in sky and 0 not in sky

    def test_delete_of_non_member_is_a_noop(self):
        data = small_dynamic()
        sky = IncrementalSkyline(data)
        pid = data.append([(100, 100, "T")])[0]  # dominated by everything
        sky.insert(pid)
        before = sky.ids
        data.delete([pid])
        effect = sky.delete(pid)
        assert not effect.changed and sky.ids == before

    def test_delete_readmits_exclusive_dominance_region_only(self):
        data = DynamicDataset(
            SCHEMA,
            [
                (1, 1, "T"),   # 0: member, shadows 2 and 3
                (2, 0, "H"),   # 1: member
                (2, 2, "T"),   # 2: exclusively shadowed by 0
                (3, 1, "H"),   # 3: shadowed by 0 AND 1 -> stays out
            ],
        )
        sky = IncrementalSkyline(data)
        assert sky.ids == (0, 1)
        data.delete([0])
        effect = sky.delete(0)
        assert effect.evicted == (0,)
        assert effect.entered == (2,)
        assert sky.ids == (1, 2)

    @pytest.mark.parametrize("backend", available_backends())
    def test_random_churn_matches_rebuild(self, backend):
        base = generate(
            SyntheticConfig(
                num_points=300, num_numeric=2, num_nominal=2,
                cardinality=5, seed=17,
            )
        )
        template = frequent_value_template(base)
        data = DynamicDataset.from_dataset(base)
        sky = IncrementalSkyline(data, template, backend=backend)
        extra = generate(
            SyntheticConfig(
                num_points=120, num_numeric=2, num_nominal=2,
                cardinality=5, seed=18,
            )
        )
        rng = random.Random(4)
        live = list(data.ids)
        for step in range(120):
            if rng.random() < 0.5 and live:
                victim = live.pop(rng.randrange(len(live)))
                data.delete([victim])
                sky.delete(victim)
            else:
                pid = data.append([extra.row(rng.randrange(len(extra)))])[0]
                sky.insert(pid)
                live.append(pid)
            if step % 30 == 29:
                maintained = sky.ids
                assert maintained == sky.rebuild()


class TestTreeRefresh:
    @pytest.mark.parametrize("payload", ["set", "bitmap"])
    def test_refresh_matches_fresh_build(self, payload):
        base = generate(
            SyntheticConfig(
                num_points=250, num_numeric=2, num_nominal=2,
                cardinality=4, seed=5,
            )
        )
        template = frequent_value_template(base)
        extra = generate(
            SyntheticConfig(
                num_points=80, num_numeric=2, num_nominal=2,
                cardinality=4, seed=6,
            )
        )
        rng = random.Random(2)
        data = DynamicDataset.from_dataset(base)
        sky = IncrementalSkyline(data, template)
        tree = IPOTree.build(base, template, payload=payload)
        live = list(data.ids)
        for batch in range(3):
            dirty = set()
            for _ in range(20):
                if rng.random() < 0.5 and live:
                    victim = live.pop(rng.randrange(len(live)))
                    data.delete([victim])
                    dirty.update(sky.delete(victim).dirty)
                else:
                    pid = data.append(
                        [extra.row(rng.randrange(len(extra)))]
                    )[0]
                    dirty.update(sky.insert(pid).dirty)
                    live.append(pid)
            stats = tree.refresh(dirty, data=data, skyline_ids=sky.ids)
            assert stats.skyline_size == len(sky.ids)
            snap, snap_ids = data.snapshot(), data.snapshot_ids()
            fresh = IPOTree.build(snap, template, payload=payload)
            assert tree.skyline_ids == tuple(
                snap_ids[i] for i in fresh.skyline_ids
            )
            for pref in generate_preferences(
                base, order=3, count=5, template=template, seed=batch
            ):
                assert tree.query(pref) == sorted(
                    snap_ids[i] for i in fresh.query(pref)
                )

    def test_refresh_with_no_change_touches_nothing(self):
        base = generate(
            SyntheticConfig(
                num_points=100, num_numeric=2, num_nominal=2,
                cardinality=4, seed=9,
            )
        )
        template = frequent_value_template(base)
        tree = IPOTree.build(base, template)
        before = tree.skyline_ids
        stats = tree.refresh(())
        assert stats.dirty == 0
        assert stats.entries_updated == 0
        assert tree.skyline_ids == before


class TestServiceUpdates:
    def make_service(self, **kwargs):
        base = generate(
            SyntheticConfig(
                num_points=220, num_numeric=2, num_nominal=2,
                cardinality=4, seed=21,
            )
        )
        template = frequent_value_template(base)
        service = SkylineService(
            base, template, cache_capacity=32, **kwargs
        )
        prefs = generate_preferences(
            base, order=2, count=6, template=template, seed=1
        )
        return base, template, service, prefs

    def oracle(self, service, template, pref):
        snap = service.data_snapshot()
        translate = (
            service._dynamic.snapshot_ids()
            if service._dynamic is not None
            else tuple(range(len(snap)))
        )
        return tuple(
            sorted(
                translate[i]
                for i in skyline(snap, pref, template=template).ids
            )
        )

    def test_mutations_keep_every_query_exact(self):
        base, template, service, prefs = self.make_service()
        extra = generate(
            SyntheticConfig(
                num_points=100, num_numeric=2, num_nominal=2,
                cardinality=4, seed=22,
            )
        )
        rng = random.Random(7)
        live = list(range(len(base)))
        for round_no in range(5):
            for pref in prefs:
                service.query(pref)
            if round_no % 2 == 0:
                report = service.insert_rows(
                    [extra.row(rng.randrange(len(extra))) for _ in range(4)]
                )
                live.extend(report.point_ids)
                assert report.kind == "insert"
            else:
                victims = rng.sample(live, 4)
                report = service.delete_rows(victims)
                for v in victims:
                    live.remove(v)
                assert report.kind == "delete"
            assert report.version == service.version > 0
            for pref in prefs + [None]:
                result = service.query(pref)
                assert result.ids == self.oracle(service, template, pref), (
                    round_no, result.route
                )

    @staticmethod
    def extreme_row(schema, numeric_value):
        """A row with every numeric dimension at ``numeric_value``."""
        return tuple(
            numeric_value if spec.domain is None else spec.domain[0]
            for spec in schema
        )

    def test_insert_patches_cache_instead_of_dropping(self):
        base, template, service, prefs = self.make_service()
        for pref in prefs:
            service.query(pref)
        # A row worse than everything on every dimension cannot change
        # any skyline: every entry must be retained untouched.
        report = service.insert_rows([self.extreme_row(base.schema, 10**9)])
        assert report.cache_invalidated == 0
        assert report.cache_patched == 0
        assert report.cache_retained > 0
        # A row better than everything enters every cached skyline:
        # entries are patched in place, never dropped.
        report = service.insert_rows([self.extreme_row(base.schema, -10**9)])
        assert report.cache_invalidated == 0
        assert report.cache_patched > 0
        pid = report.point_ids[0]
        for pref in prefs:
            result = service.query(pref)
            assert pid in result.ids
            assert result.route == "cache"  # served from the patched entry

    def test_delete_drops_only_entries_containing_the_victim(self):
        base, template, service, prefs = self.make_service()
        # Dedup by canonical key: distinct preferences may alias to one
        # cache entry, and the accounting is per entry.
        entries = {r.key: r for r in (service.query(p) for p in prefs)}
        results = list(entries.values())
        member = results[0].ids[0]
        in_count = sum(1 for r in results if member in r.ids)
        out_count = len(results) - in_count
        report = service.delete_rows([member])
        assert report.cache_invalidated == in_count
        assert report.cache_retained == out_count
        assert report.cache_patched == 0

    def test_churn_heavy_workload_routes_incremental(self):
        base, template, service, prefs = self.make_service(
            planner_config=PlannerConfig(incremental_update_ratio=0.05),
        )
        service.query(prefs[0])
        service.delete_rows([0, 1, 2, 3, 4])
        result = service.query(prefs[1], use_cache=False)
        assert result.route == "incremental"
        assert result.ids == self.oracle(service, template, prefs[1])
        assert "incremental" in service.available_routes()

    def test_incremental_route_requires_mutable_mode(self):
        _base, _template, service, prefs = self.make_service()
        with pytest.raises(ReproError, match="incremental"):
            service.query(prefs[0], route="incremental")

    def test_compact_remaps_and_stays_exact(self):
        base, template, service, prefs = self.make_service()
        service.delete_rows(list(range(10)))
        before = {p: service.query(p, use_cache=False).ids for p in prefs}
        remap = service.compact()
        assert set(remap) >= set(before[prefs[0]])
        for pref in prefs:
            got = service.query(pref, use_cache=False).ids
            assert got == tuple(sorted(remap[i] for i in before[pref]))
            assert got == self.oracle(service, template, pref)

    def test_refresh_structures_revives_stale_routes(self):
        base, template, service, prefs = self.make_service(
            planner_config=PlannerConfig(incremental_update_ratio=0.0),
        )
        # ratio gate at 0.0: any mutation leaves the tree stale, and
        # deleting a template-skyline member stales the MDC filter.
        member = service.query(None, use_cache=False).ids[0]
        service.delete_rows([member])
        assert service._tree_stale or service.tree is None
        assert service._mdc_stale
        service.refresh_structures()
        assert not service._tree_stale
        assert not service._mdc_stale
        for route in ("ipo", "mdc", "adaptive"):
            got = service.query(prefs[0], route=route)
            assert got.ids == self.oracle(service, template, prefs[0]), route

    def test_static_service_unchanged(self):
        _base, _template, service, prefs = self.make_service()
        result = service.query(prefs[0])
        assert result.version == 0
        assert service.version == 0
        assert "incremental" not in service.available_routes()
        assert service.compact() == {}


class TestReviewRegressions:
    """Pins for review findings: ipo_k on compact, gate window, columns."""

    def test_compact_preserves_ipo_k_truncation(self):
        base = generate(
            SyntheticConfig(
                num_points=150, num_numeric=2, num_nominal=2,
                cardinality=6, seed=33,
            )
        )
        template = frequent_value_template(base)
        service = SkylineService(
            base, template, ipo_k=2, with_tree=True, cache_capacity=8
        )
        before = [len(values) for values in service.tree.candidates]
        assert all(n <= 3 for n in before)  # k=2 plus template values
        service.delete_rows(list(range(5)))
        service.compact()
        after = [len(values) for values in service.tree.candidates]
        assert after == before  # rebuild kept the Tree-k truncation

    def test_refresh_structures_resets_the_churn_gate(self):
        base = generate(
            SyntheticConfig(
                num_points=200, num_numeric=2, num_nominal=2,
                cardinality=4, seed=34,
            )
        )
        template = frequent_value_template(base)
        service = SkylineService(base, template, cache_capacity=8)
        pref = generate_preferences(
            base, order=2, count=1, template=template, seed=2
        )[0]
        service.query(pref)
        service.delete_rows(list(range(10)))  # ratio far above the gate
        assert service.query(pref, use_cache=False).route == "incremental"
        service.refresh_structures()
        result = service.query(pref, use_cache=False)
        assert result.route != "incremental"  # gate window was reset

    def test_gate_window_decays_lifetime_history(self):
        base = generate(
            SyntheticConfig(
                num_points=100, num_numeric=2, num_nominal=1,
                cardinality=3, seed=35,
            )
        )
        service = SkylineService(base, cache_capacity=0, with_tree=False)
        # Simulate a long query-only history beyond the window...
        with service._lock:
            service._gate_queries = 10 * service.GATE_WINDOW
        with service._lock:
            service._decay_gate_locked()
        # ... a churn storm must cross the gate within O(window) updates,
        # not O(history) ones.
        service.delete_rows(list(range(30)))
        for _ in range(3):
            service.insert_rows([base.row(0)])
        assert service._gate_queries <= service.GATE_WINDOW
        assert service._update_ratio() > 0.0

    def test_dynamic_columns_grow_incrementally_and_stay_exact(self):
        pytest.importorskip("numpy")
        from repro.engine.columnar import ColumnarStore

        base = generate(
            SyntheticConfig(
                num_points=60, num_numeric=2, num_nominal=2,
                cardinality=4, seed=36,
            )
        )
        data = DynamicDataset.from_dataset(base)
        for step in range(4):
            data.append([base.row(step)])
            data.delete([step])
            got = data.columns
            want = ColumnarStore.from_rows(
                data.canonical_rows,
                data.schema.nominal_indices,
                num_dims=len(data.schema),
            )
            assert (got.matrix == want.matrix).all()
            assert (got.keys == want.keys).all()
            assert data.columns is got  # version-cached view
        data.compact()
        got = data.columns  # shrink detected: rebuilt, still exact
        want = ColumnarStore.from_rows(
            data.canonical_rows,
            data.schema.nominal_indices,
            num_dims=len(data.schema),
        )
        assert (got.matrix == want.matrix).all()
        assert len(got) == len(data)

    def test_maintainer_fails_fast_after_external_compaction(self):
        data = small_dynamic()
        sky = IncrementalSkyline(data)
        data.delete([0])
        sky.delete(0)
        data.compact()
        pid = data.append([(1, 1, "T")])[0]
        with pytest.raises(DatasetError, match="compacted"):
            sky.insert(pid)
        # rebuild() re-attaches: maintained ids equal a fresh recompute.
        sky.rebuild()
        assert sky.ids == sky.rebuild()
        data.delete([pid])
        assert sky.delete(pid).changed  # absorbs updates again

    def test_forced_stale_route_answers_are_not_cached(self):
        base = generate(
            SyntheticConfig(
                num_points=200, num_numeric=2, num_nominal=2,
                cardinality=4, seed=37,
            )
        )
        template = frequent_value_template(base)
        service = SkylineService(
            base, template, cache_capacity=16,
            planner_config=PlannerConfig(incremental_update_ratio=0.0),
        )
        pref = generate_preferences(
            base, order=2, count=1, template=template, seed=3
        )[0]
        fresh = service.query(pref, use_cache=False).ids
        # Make the tree stale (gate at 0.0), with a mutation that
        # changes this preference's answer.
        member = fresh[0]
        service.delete_rows([member])
        assert service._tree_stale
        stale = service.query(pref, route="ipo")  # stale by design
        assert member in stale.ids  # the stale structure still has it
        # The poisoned answer must NOT have been stored: a planned
        # query recomputes and excludes the deleted member.
        planned = service.query(pref)
        assert member not in planned.ids
        assert planned.route != "cache"

    def test_compaction_rebuild_leaves_old_column_views_intact(self):
        pytest.importorskip("numpy")
        data = small_dynamic()
        before = data.columns
        frozen = before.matrix.copy()
        data.delete([0])
        data.compact()
        after = data.columns  # rebuilt into fresh arrays
        assert (before.matrix == frozen).all()  # old view untouched
        assert len(after) == 3
        assert (after.matrix[0] == before.matrix[1]).all()

    def test_empty_mutation_batches_keep_versions_in_lockstep(self):
        base = generate(
            SyntheticConfig(
                num_points=80, num_numeric=2, num_nominal=1,
                cardinality=3, seed=38,
            )
        )
        service = SkylineService(base, cache_capacity=8)
        report = service.insert_rows([])
        assert report.version == 0 and len(report) == 0
        assert service.cache.stats().version == 0
        service.insert_rows([base.row(0)])
        report = service.delete_rows([])
        assert report.version == 1
        assert service.cache.stats().version == service.version == 1

    def test_tree_refresh_accepts_maintained_base_skyline(self):
        base = generate(
            SyntheticConfig(
                num_points=200, num_numeric=2, num_nominal=2,
                cardinality=4, seed=39,
            )
        )
        template = frequent_value_template(base)
        data = DynamicDataset.from_dataset(base)
        sky = IncrementalSkyline(data, template)
        bases = IncrementalSkyline(data)  # empty preference = SKY(R0)
        tree = IPOTree.build(base, template)
        pid = data.append([base.row(0)])[0]
        dirty = set(sky.insert(pid).dirty)
        bases.insert(pid)
        tree.refresh(
            dirty, data=data, skyline_ids=sky.ids,
            base_skyline_ids=bases.ids,
        )
        snap, snap_ids = data.snapshot(), data.snapshot_ids()
        fresh = IPOTree.build(snap, template)
        for pref in generate_preferences(
            base, order=2, count=4, template=template, seed=4
        ):
            assert tree.query(pref) == sorted(
                snap_ids[i] for i in fresh.query(pref)
            )

    def test_compact_without_tombstones_keeps_cache_and_versions(self):
        base = generate(
            SyntheticConfig(
                num_points=80, num_numeric=2, num_nominal=1,
                cardinality=3, seed=40,
            )
        )
        service = SkylineService(base, cache_capacity=8)
        service.insert_rows([base.row(0)])  # mutable mode, no tombstones
        pref = generate_preferences(base, order=1, count=1, seed=5)[0]
        service.query(pref)
        version = service.version
        remap = service.compact()  # identity: nothing was deleted
        assert remap[0] == 0 and len(remap) == len(base) + 1
        assert service.version == version  # no bump
        assert service.cache.stats().version == version  # still lockstep
        assert service.query(pref).route == "cache"  # cache survived

    def test_noop_updates_skip_the_tree_refresh(self):
        base = generate(
            SyntheticConfig(
                num_points=150, num_numeric=2, num_nominal=2,
                cardinality=4, seed=41,
            )
        )
        template = frequent_value_template(base)
        service = SkylineService(base, template, cache_capacity=8)
        worst = TestServiceUpdates.extreme_row(base.schema, 10**9)
        report = service.insert_rows([worst])
        # Dominated on every dimension: no skyline flip anywhere, so
        # the tree neither refreshed nor went stale.
        assert not report.skyline_entered and not report.skyline_evicted
        assert not report.tree_refreshed
        assert not service._tree_stale
        pref = generate_preferences(
            base, order=2, count=1, template=template, seed=6
        )[0]
        result = service.query(pref, use_cache=False)
        oracle = TestServiceUpdates().oracle(service, template, pref)
        assert result.ids == oracle

    def test_concurrent_columns_builds_stay_exact(self):
        pytest.importorskip("numpy")
        from concurrent.futures import ThreadPoolExecutor

        from repro.engine.columnar import ColumnarStore

        base = generate(
            SyntheticConfig(
                num_points=120, num_numeric=2, num_nominal=2,
                cardinality=4, seed=42,
            )
        )
        data = DynamicDataset.from_dataset(base)
        with ThreadPoolExecutor(max_workers=4) as pool:
            for step in range(10):
                data.append([base.row(step)])
                stores = list(pool.map(lambda _: data.columns, range(4)))
                want = ColumnarStore.from_rows(
                    data.canonical_rows,
                    data.schema.nominal_indices,
                    num_dims=len(data.schema),
                )
                for store in stores:
                    assert (store.matrix == want.matrix).all()
                    assert (store.keys == want.keys).all()

    def test_first_update_before_any_query_refreshes_eagerly(self):
        base = generate(
            SyntheticConfig(
                num_points=150, num_numeric=2, num_nominal=2,
                cardinality=4, seed=43,
            )
        )
        template = frequent_value_template(base)
        service = SkylineService(base, template, cache_capacity=8)
        member = skyline(base, None, template=template).ids[0]
        # No query has been served: the gate must not trip, the tree
        # must be refreshed eagerly, and ipo stays routable.
        report = service.delete_rows([member])
        assert report.tree_refreshed
        assert not service._tree_stale

    def test_stale_tree_recovers_on_a_later_noop_batch(self):
        base = generate(
            SyntheticConfig(
                num_points=150, num_numeric=2, num_nominal=2,
                cardinality=4, seed=44,
            )
        )
        template = frequent_value_template(base)
        service = SkylineService(base, template, cache_capacity=8)
        service.query(None)
        # Storm trips the gate and leaves the tree stale...
        for _ in range(2):
            service.delete_rows(
                [service.query(None, use_cache=False).ids[0]]
            )
        assert service._tree_stale
        # ... then a lull: enough queries drop the ratio below the
        # gate, and the next batch - even a no-op one - catches the
        # tree up instead of skipping it.
        for _ in range(40):
            service.query(None, use_cache=False)
        report = service.insert_rows(
            [TestServiceUpdates.extreme_row(base.schema, 10**9)]
        )
        assert report.tree_refreshed
        assert not service._tree_stale

    def test_compact_without_tombstones_still_realigns_structures(self):
        base = generate(
            SyntheticConfig(
                num_points=150, num_numeric=2, num_nominal=2,
                cardinality=4, seed=45,
            )
        )
        template = frequent_value_template(base)
        service = SkylineService(
            base, template, cache_capacity=8,
            planner_config=PlannerConfig(incremental_update_ratio=0.0),
        )
        member = service.query(None, use_cache=False).ids[0]
        service.delete_rows([member])
        service.insert_rows([base.row(member)])  # undo: ids all live? no -
        # the delete left a tombstone, so force an append-only staleness:
        service2 = SkylineService(
            base, template, cache_capacity=8,
            planner_config=PlannerConfig(incremental_update_ratio=0.0),
        )
        service2.query(None)
        best = TestServiceUpdates.extreme_row(base.schema, -10**9)
        service2.insert_rows([best])  # gate 0.0: tree goes stale
        assert service2._tree_stale
        assert service2._dynamic.deleted_fraction == 0.0
        service2.compact()  # identity path must still re-align
        assert not service2._tree_stale
