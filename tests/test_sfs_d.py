"""Unit tests for the SFS-D baseline."""

import pytest

from repro.algorithms.sfs_d import SFSDirect
from repro.core.preferences import Preference
from repro.core.skyline import skyline
from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
)
from repro.datagen.queries import generate_preferences
from repro.exceptions import RefinementError


@pytest.fixture(scope="module")
def workload():
    return generate(
        SyntheticConfig(
            num_points=150, num_numeric=2, num_nominal=2, cardinality=4,
            seed=21,
        )
    )


class TestSFSDirect:
    def test_matches_bruteforce(self, workload):
        direct = SFSDirect(workload)
        for pref in generate_preferences(workload, 3, 5, seed=1):
            assert direct.query(pref) == sorted(
                skyline(workload, pref, algorithm="bruteforce").ids
            )

    def test_empty_preference(self, workload):
        direct = SFSDirect(workload)
        assert direct.query() == sorted(skyline(workload).ids)

    def test_template_merged(self, workload):
        template = frequent_value_template(workload)
        direct = SFSDirect(workload, template)
        expected = sorted(skyline(workload, template=template).ids)
        assert direct.query() == expected

    def test_template_violation_raises(self, workload):
        template = frequent_value_template(workload)
        direct = SFSDirect(workload, template)
        wrong = workload.most_frequent("nom0", 2)[1]
        with pytest.raises(RefinementError):
            direct.query(Preference({"nom0": [wrong]}))

    def test_no_extra_storage(self, workload):
        assert SFSDirect(workload).storage_bytes() == 0

    def test_paper_baseline_name(self, workload):
        assert SFSDirect(workload).name == "SFS-D"
