"""Unit tests for the dataset container and canonical encoding."""

import pytest

from repro.core.attributes import Schema, nominal, numeric_max, numeric_min, ordinal
from repro.core.dataset import Dataset
from repro.exceptions import DatasetError


class CountedFloat:
    """A numeric value that counts its canonical conversions.

    Lets the derivation tests observe whether a code path re-walked
    rows it should have reused; tests diff against a baseline, so the
    shared class-level counter never leaks between them.
    """

    conversions = 0

    def __init__(self, value):
        self.value = value

    def __float__(self):
        CountedFloat.conversions += 1
        return float(self.value)



class TestConstruction:
    def test_canonical_encoding(self, vacation_data):
        # Price passes through, Hotel-class negates, Hotel-group encodes.
        assert vacation_data.canonical(0) == (1600.0, -4.0, 0)
        assert vacation_data.canonical(2) == (3000.0, -5.0, 1)

    def test_ordinal_encoding(self):
        schema = Schema([ordinal("health", ["good", "ok", "bad"])])
        data = Dataset(schema, [("ok",), ("bad",)])
        assert data.canonical(0) == (1.0,)
        assert data.canonical(1) == (2.0,)

    def test_row_roundtrip(self, vacation_data):
        assert vacation_data.row(0) == (1600, 4, "T")
        assert vacation_data[5] == (3000, 3, "M")

    def test_wrong_width_rejected(self, vacation_schema):
        with pytest.raises(DatasetError):
            Dataset(vacation_schema, [(1600, 4)])

    def test_unknown_nominal_value_rejected(self, vacation_schema):
        with pytest.raises(DatasetError):
            Dataset(vacation_schema, [(1600, 4, "X")])

    def test_from_dicts(self, vacation_schema):
        data = Dataset.from_dicts(
            vacation_schema,
            [{"Price": 1600, "Hotel-class": 4, "Hotel-group": "T"}],
        )
        assert data.row(0) == (1600, 4, "T")

    def test_from_dicts_missing_key(self, vacation_schema):
        with pytest.raises(DatasetError):
            Dataset.from_dicts(vacation_schema, [{"Price": 1600}])

    def test_empty_dataset_allowed(self, vacation_schema):
        data = Dataset(vacation_schema, [])
        assert len(data) == 0
        assert list(data.ids) == []


class TestAccessors:
    def test_bad_id_raises(self, vacation_data):
        with pytest.raises(DatasetError):
            vacation_data.row(99)
        with pytest.raises(DatasetError):
            vacation_data.canonical(99)

    def test_value_accessor(self, vacation_data):
        assert vacation_data.value(2, "Hotel-group") == "H"

    def test_value_id_roundtrip(self, vacation_data):
        vid = vacation_data.value_id("Hotel-group", "M")
        assert vacation_data.value_of_id("Hotel-group", vid) == "M"

    def test_value_id_unknown_value(self, vacation_data):
        with pytest.raises(DatasetError):
            vacation_data.value_id("Hotel-group", "X")

    def test_value_id_numeric_attribute(self, vacation_data):
        with pytest.raises(DatasetError):
            vacation_data.value_id("Price", 1600)

    def test_value_of_id_out_of_range(self, vacation_data):
        with pytest.raises(DatasetError):
            vacation_data.value_of_id("Hotel-group", 17)

    def test_cardinality(self, vacation_data):
        assert vacation_data.cardinality("Hotel-group") == 3

    def test_iteration_yields_raw_rows(self, vacation_data):
        assert list(vacation_data)[0] == (1600, 4, "T")


class TestStatistics:
    def test_value_counts(self, vacation_data):
        counts = vacation_data.value_counts("Hotel-group")
        assert counts["T"] == 2
        assert counts["H"] == 2
        assert counts["M"] == 2

    def test_most_frequent_tie_break_by_domain(self, vacation_data):
        # All tied at 2: domain order T, H, M decides.
        assert vacation_data.most_frequent("Hotel-group", 2) == ["T", "H"]

    def test_most_frequent_includes_absent_values(self, vacation_schema):
        data = Dataset(vacation_schema, [(1, 1, "M")])
        assert data.most_frequent("Hotel-group", 3) == ["M", "T", "H"]

    def test_most_frequent_numeric_raises(self, vacation_data):
        with pytest.raises(DatasetError):
            vacation_data.most_frequent("Price")


class TestDerivation:
    def test_subset_reassigns_ids(self, vacation_data):
        sub = vacation_data.subset([2, 4])
        assert len(sub) == 2
        assert sub.row(0) == (3000, 5, "H")

    def test_extended_keeps_old_ids(self, vacation_data):
        bigger = vacation_data.extended([(100, 5, "T")])
        assert len(bigger) == 7
        assert bigger.row(0) == vacation_data.row(0)
        assert bigger.row(6) == (100, 5, "T")

    def test_extended_validates(self, vacation_data):
        with pytest.raises(DatasetError):
            vacation_data.extended([(100, 5, "X")])

    def test_extended_reports_row_index_in_extended_dataset(
        self, vacation_data
    ):
        with pytest.raises(DatasetError, match="row 7"):
            vacation_data.extended([(100, 5, "T"), (100, 5, "X")])

    def test_extended_does_not_reencode_existing_rows(self, vacation_schema):
        """Regression: appends must cost O(new rows), not O(total rows).

        ``extended`` used to hand all rows back to the constructor,
        re-validating and re-encoding the untouched prefix on every
        call.  A numeric value that counts its own conversions makes
        any re-walk of the old rows observable.
        """

        data = Dataset(
            vacation_schema,
            [(CountedFloat(1600 + i), 4, "T") for i in range(10)],
        )
        baseline = CountedFloat.conversions
        assert baseline >= 10  # construction encoded every row once
        bigger = data.extended([(100, 5, "M")])
        assert CountedFloat.conversions == baseline  # old rows untouched
        assert len(bigger) == 11
        assert bigger.canonical(0) == data.canonical(0)
        assert bigger.canonical(10) == (100.0, -5.0, 2)

    def test_subset_does_not_reencode_selected_rows(self, vacation_schema):
        data = Dataset(
            vacation_schema, [(CountedFloat(10), 4, "T"), (20, 3, "H")]
        )
        baseline = CountedFloat.conversions
        sub = data.subset([0])
        assert CountedFloat.conversions == baseline
        assert sub.canonical(0) == data.canonical(0)
