"""Docstring coverage gate on the public API.

Two guarantees, cheap enough to run in every CI leg:

1. **Coverage** - every public module under the audited packages has a
   module docstring, and every public function, class and method
   defined there is documented.  "Public" means not underscore-prefixed
   and defined in (not merely imported into) the module.
2. **Semantics** - the paper's one subtle contract, *unlisted nominal
   values are mutually incomparable*, is stated at the entry points
   where callers would otherwise assume a total order.

This file is the enforcement half of the documentation pass; the prose
lives in the docstrings themselves, README.md and docs/architecture.md.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

#: Packages whose entire public surface must be documented.
AUDITED_PACKAGES = (
    "repro.core",
    "repro.algorithms",
    "repro.adaptive",
    "repro.engine",
    "repro.hybrid",
    "repro.ipo",
    "repro.faults",
    "repro.mdc",
    "repro.net",
    "repro.replication",
    "repro.serve",
    "repro.updates",
)

#: Entry points that must spell out the unlisted-values-incomparable
#: semantics of implicit preferences (module name -> where to look).
SEMANTICS_STATEMENTS = {
    "repro.core.preferences": "module",
    "repro.core.dominance": "module",
    "repro.core.skyline": "module-or-skyline",
}


def audited_modules():
    """Every module (including subpackage roots) under the audit list."""
    names = []
    for package_name in AUDITED_PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__, package_name + "."):
            names.append(info.name)
    return names


def public_members(module):
    """(qualified name, object) pairs defined in ``module``'s namespace."""
    out = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; audited where it is defined
        out.append((name, obj))
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr):
                    out.append((f"{name}.{attr_name}", attr))
                elif isinstance(attr, property):
                    out.append((f"{name}.{attr_name} (property)", attr.fget))
    return out


@pytest.mark.parametrize("module_name", audited_modules())
def test_module_and_public_members_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} has no module docstring"
    )
    undocumented = [
        qualname
        for qualname, obj in public_members(module)
        if obj is not None and not inspect.getdoc(obj)
    ]
    assert not undocumented, (
        f"{module_name} has undocumented public members: {undocumented}"
    )


@pytest.mark.parametrize("module_name", sorted(SEMANTICS_STATEMENTS))
def test_incomparability_semantics_stated(module_name):
    """The partial-order subtlety must be stated where users read it.

    The wording may vary, but the docstring must mention both the
    unlisted values and their incomparability - that is the contract
    separating implicit preferences from totally ordered attributes.
    """
    module = importlib.import_module(module_name)
    texts = [module.__doc__ or ""]
    if SEMANTICS_STATEMENTS[module_name] == "module-or-skyline":
        texts.append(inspect.getdoc(module.skyline) or "")
    blob = "\n".join(texts).lower()
    assert "unlisted" in blob and "incomparab" in blob, (
        f"{module_name} must state that unlisted values are mutually "
        "incomparable (the partial-order contract)"
    )


def test_serving_entry_points_documented_in_detail():
    """The new serving API's core entry points carry real docstrings."""
    from repro.serve import Planner, SemanticCache, SkylineService, replay

    for obj in (SkylineService, SkylineService.query, Planner.plan,
                SemanticCache.lookup, replay):
        doc = inspect.getdoc(obj)
        assert doc and len(doc.splitlines()) >= 2, (
            f"{obj.__qualname__} needs a multi-line docstring"
        )


def test_canonical_cache_key_contract_documented():
    """The cache-key function must state its iff-contract."""
    from repro.core.preferences import canonical_cache_key

    doc = inspect.getdoc(canonical_cache_key) or ""
    assert "partial order" in doc.lower()
    assert "template" in doc.lower()
