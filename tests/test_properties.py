"""Property-based tests (hypothesis) for the paper's theorems and the
equivalence of every evaluation path.

Datasets are drawn with small integer numeric values (to force ties and
duplicates) and small nominal domains (to force dense preference
interactions) - the regimes where ordering bugs hide.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adaptive.adaptive_sfs import AdaptiveSFS
from repro.algorithms import ALGORITHMS, bruteforce_skyline
from repro.core.attributes import Schema, nominal, numeric_min
from repro.core.dataset import Dataset
from repro.core.dominance import RankTable
from repro.core.preferences import ImplicitPreference, Preference
from repro.core.skyline import skyline
from repro.ipo.tree import IPOTree

DOMAIN_A = ("a0", "a1", "a2", "a3")
DOMAIN_B = ("b0", "b1", "b2")

SCHEMA = Schema(
    [
        numeric_min("x"),
        numeric_min("y"),
        nominal("A", DOMAIN_A),
        nominal("B", DOMAIN_B),
    ]
)

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

rows = st.lists(
    st.tuples(
        st.integers(0, 4),
        st.integers(0, 4),
        st.sampled_from(DOMAIN_A),
        st.sampled_from(DOMAIN_B),
    ),
    min_size=1,
    max_size=40,
)


@st.composite
def chains(draw, domain, max_len=None):
    """A duplicate-free preference chain over ``domain``."""
    limit = max_len if max_len is not None else len(domain)
    length = draw(st.integers(0, limit))
    return tuple(draw(st.permutations(list(domain))))[:length]


@st.composite
def preferences(draw):
    return Preference(
        {
            "A": ImplicitPreference(draw(chains(DOMAIN_A))),
            "B": ImplicitPreference(draw(chains(DOMAIN_B))),
        }
    )


def truth(data: Dataset, pref) -> set:
    return set(skyline(data, pref, algorithm="bruteforce").ids)


class TestDominanceIsStrictPartialOrder:
    @SETTINGS
    @given(rows=rows, pref=preferences())
    def test_irreflexive_and_antisymmetric(self, rows, pref):
        data = Dataset(SCHEMA, rows)
        table = RankTable.compile(SCHEMA, pref)
        canon = data.canonical_rows
        for p in canon[:10]:
            assert not table.dominates(p, p)
            for q in canon[:10]:
                if table.dominates(p, q):
                    assert not table.dominates(q, p)

    @SETTINGS
    @given(rows=rows, pref=preferences())
    def test_transitive(self, rows, pref):
        data = Dataset(SCHEMA, rows)
        table = RankTable.compile(SCHEMA, pref)
        canon = data.canonical_rows[:8]
        for p in canon:
            for q in canon:
                if not table.dominates(p, q):
                    continue
                for r in canon:
                    if table.dominates(q, r):
                        assert table.dominates(p, r)

    @SETTINGS
    @given(rows=rows, pref=preferences())
    def test_rank_semantics_match_partial_order_model(self, rows, pref):
        """The fast rank-table dominance == the formal P(R~) expansion."""
        data = Dataset(SCHEMA, rows)
        table = RankTable.compile(SCHEMA, pref)
        order_a = pref["A"].to_partial_order(DOMAIN_A)
        order_b = pref["B"].to_partial_order(DOMAIN_B)
        for i in list(data.ids)[:8]:
            for j in list(data.ids)[:8]:
                p_raw, q_raw = data.row(i), data.row(j)
                per_dim_ok = (
                    p_raw[0] <= q_raw[0]
                    and p_raw[1] <= q_raw[1]
                    and order_a.better_or_equal(p_raw[2], q_raw[2])
                    and order_b.better_or_equal(p_raw[3], q_raw[3])
                )
                strict = per_dim_ok and p_raw != q_raw
                assert table.dominates(
                    data.canonical(i), data.canonical(j)
                ) == strict


class TestScoreMonotonicity:
    @SETTINGS
    @given(rows=rows, pref=preferences())
    def test_dominance_implies_smaller_score(self, rows, pref):
        data = Dataset(SCHEMA, rows)
        table = RankTable.compile(SCHEMA, pref)
        canon = data.canonical_rows
        for p in canon[:12]:
            for q in canon[:12]:
                if table.dominates(p, q):
                    assert table.score(p) < table.score(q)


class TestTheorem1Monotonicity:
    @SETTINGS
    @given(rows=rows, pref=preferences(), data_=st.data())
    def test_refinement_shrinks_skyline(self, rows, pref, data_):
        data = Dataset(SCHEMA, rows)
        # Extend each chain to build a refinement.
        refined = pref
        for name, domain in (("A", DOMAIN_A), ("B", DOMAIN_B)):
            chain = list(pref[name].choices)
            extra = [v for v in domain if v not in chain]
            take = data_.draw(st.integers(0, len(extra)))
            refined = refined.with_dimension(
                name, ImplicitPreference(tuple(chain + extra[:take]))
            )
        assert refined.refines(pref)
        assert truth(data, refined) <= truth(data, pref)


class TestTheorem2MergingProperty:
    @SETTINGS
    @given(rows=rows, data_=st.data())
    def test_merge_identity(self, rows, data_):
        data = Dataset(SCHEMA, rows)
        chain = data_.draw(chains(DOMAIN_A, max_len=4))
        if len(chain) < 2:
            return
        x = len(chain)
        prefix = Preference({"A": ImplicitPreference(chain[: x - 1])})
        single = Preference({"A": ImplicitPreference((chain[x - 1],))})
        full = Preference({"A": ImplicitPreference(chain)})
        sky_prefix = truth(data, prefix)
        sky_single = truth(data, single)
        dim = SCHEMA.index_of("A")
        listed = {data.value_id("A", v) for v in chain[: x - 1]}
        psky = {
            p for p in sky_prefix if data.canonical(p)[dim] in listed
        }
        assert truth(data, full) == (sky_prefix & sky_single) | psky


class TestAllPathsAgree:
    @SETTINGS
    @given(rows=rows, pref=preferences())
    def test_algorithms_equal_bruteforce(self, rows, pref):
        data = Dataset(SCHEMA, rows)
        table = RankTable.compile(SCHEMA, pref)
        expected = set(
            bruteforce_skyline(data.canonical_rows, data.ids, table)
        )
        for name, algo in ALGORITHMS.items():
            assert (
                set(algo(data.canonical_rows, data.ids, table)) == expected
            ), name

    @SETTINGS
    @given(rows=rows, pref=preferences())
    def test_ipo_tree_equals_bruteforce(self, rows, pref):
        data = Dataset(SCHEMA, rows)
        tree = IPOTree.build(data)
        assert set(tree.query(pref)) == truth(data, pref)

    @SETTINGS
    @given(rows=rows, pref=preferences())
    def test_ipo_bitmap_equals_bruteforce(self, rows, pref):
        data = Dataset(SCHEMA, rows)
        tree = IPOTree.build(data, payload="bitmap")
        assert set(tree.query(pref)) == truth(data, pref)

    @SETTINGS
    @given(rows=rows, pref=preferences())
    def test_adaptive_sfs_equals_bruteforce(self, rows, pref):
        data = Dataset(SCHEMA, rows)
        index = AdaptiveSFS(data)
        assert set(index.query(pref)) == truth(data, pref)

    @SETTINGS
    @given(rows=rows, pref=preferences())
    def test_mdc_filter_equals_bruteforce(self, rows, pref):
        from repro.mdc.filter import MDCFilter

        data = Dataset(SCHEMA, rows)
        index = MDCFilter(data)
        assert set(index.query(pref)) == truth(data, pref)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(rows=rows, pref=preferences())
    def test_full_materialization_equals_bruteforce(self, rows, pref):
        from repro.materialize.full import FullMaterialization

        data = Dataset(SCHEMA, rows)
        index = FullMaterialization(data, max_order=4, max_entries=500_000)
        assert set(index.query(pref)) == truth(data, pref)

    @SETTINGS
    @given(rows=rows, pref=preferences())
    def test_adaptive_progressive_prefixes_are_sound(self, rows, pref):
        data = Dataset(SCHEMA, rows)
        index = AdaptiveSFS(data)
        expected = truth(data, pref)
        seen = set()
        for point_id in index.iter_query(pref):
            assert point_id in expected
            seen.add(point_id)
        assert seen == expected


class TestIncrementalMaintenance:
    @SETTINGS
    @given(
        rows=rows,
        updates=st.lists(
            st.one_of(
                st.tuples(
                    st.just("insert"),
                    st.tuples(
                        st.integers(0, 4),
                        st.integers(0, 4),
                        st.sampled_from(DOMAIN_A),
                        st.sampled_from(DOMAIN_B),
                    ),
                ),
                st.tuples(st.just("delete"), st.integers(0, 60)),
            ),
            max_size=12,
        ),
    )
    def test_updates_match_rebuild(self, rows, updates):
        data = Dataset(SCHEMA, rows)
        index = AdaptiveSFS(data)
        live = set(range(len(rows)))
        for action, payload in updates:
            if action == "insert":
                live.add(index.insert(payload))
            else:
                victims = sorted(live)
                if not victims:
                    continue
                victim = victims[payload % len(victims)]
                live.discard(victim)
                index.delete(victim)
        incremental = set(index.skyline_ids)
        index.rebuild()
        assert set(index.skyline_ids) == incremental
