"""Unit tests for IPO-tree query evaluation (Algorithms 1 & 2)."""

import pytest

from repro.core.preferences import Preference
from repro.core.skyline import skyline
from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
)
from repro.datagen.queries import generate_preferences
from repro.ipo.tree import IPOTree


@pytest.fixture(scope="module")
def workload():
    data = generate(
        SyntheticConfig(
            num_points=180, num_numeric=2, num_nominal=2, cardinality=5,
            seed=23,
        )
    )
    return data


class TestQueryCorrectness:
    @pytest.mark.parametrize("payload", ["set", "bitmap"])
    @pytest.mark.parametrize("order", [0, 1, 2, 3, 5])
    def test_matches_bruteforce_without_template(self, workload, payload, order):
        tree = IPOTree.build(workload, payload=payload)
        for pref in generate_preferences(workload, order, 6, seed=order):
            expected = sorted(
                skyline(workload, pref, algorithm="bruteforce").ids
            )
            assert tree.query(pref) == expected

    @pytest.mark.parametrize("payload", ["set", "bitmap"])
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_matches_bruteforce_with_template(self, workload, payload, order):
        template = frequent_value_template(workload)
        tree = IPOTree.build(workload, template, payload=payload)
        for pref in generate_preferences(
            workload, order, 6, template=template, seed=order + 50
        ):
            expected = sorted(
                skyline(
                    workload, pref, template=template, algorithm="bruteforce"
                ).ids
            )
            assert tree.query(pref) == expected

    def test_empty_query_returns_root_skyline(self, workload):
        tree = IPOTree.build(workload)
        assert tree.query() == list(tree.skyline_ids)
        assert tree.query(Preference.empty()) == list(tree.skyline_ids)

    def test_full_chain_query(self, workload):
        """A total order on every nominal attribute (order = cardinality)."""
        tree = IPOTree.build(workload)
        spec0 = workload.schema.spec("nom0")
        spec1 = workload.schema.spec("nom1")
        pref = Preference(
            {"nom0": list(spec0.domain), "nom1": list(spec1.domain)}
        )
        expected = sorted(skyline(workload, pref).ids)
        assert tree.query(pref) == expected

    def test_single_dimension_query(self, workload):
        tree = IPOTree.build(workload)
        pref = Preference({"nom1": ["d1_v2", "d1_v0"]})
        expected = sorted(skyline(workload, pref).ids)
        assert tree.query(pref) == expected


class TestPayloadEquivalence:
    def test_set_and_bitmap_agree(self, workload):
        set_tree = IPOTree.build(workload, payload="set")
        bitmap_tree = IPOTree.build(workload, payload="bitmap")
        for pref in generate_preferences(workload, 3, 10, seed=99):
            assert set_tree.query(pref) == bitmap_tree.query(pref)

    def test_survivor_space_agrees_with_complement_space(self, workload):
        """Algorithm 1 as printed == the accumulated-disqualified form."""
        tree = IPOTree.build(workload)
        for order in (0, 1, 2, 3):
            for pref in generate_preferences(workload, order, 5, seed=order):
                assert tree.query_survivors(pref) == tree.query(pref)

    def test_bitmap_masks_mirror_sets(self, workload):
        tree = IPOTree.build(workload, payload="bitmap")
        positions = {
            point_id: pos for pos, point_id in enumerate(tree.skyline_ids)
        }
        for node in tree.root.walk():
            expected = 0
            for point_id in node.disqualified:
                expected |= 1 << positions[point_id]
            assert node.mask == expected

    def test_value_masks_partition_skyline(self, workload):
        tree = IPOTree.build(workload, payload="bitmap")
        full = (1 << len(tree.skyline_ids)) - 1
        for per_value in tree.value_masks():
            union = 0
            for mask in per_value.values():
                assert union & mask == 0  # one value per point per dim
                union |= mask
            assert union == full


class TestQueryCost:
    def test_query_touches_no_base_data(self, workload, monkeypatch):
        """Post-build queries never recompute dominance over the data.

        We monkeypatch the dominance test to explode; IPO queries must
        still succeed because they only do set algebra on payloads.
        """
        tree = IPOTree.build(workload)
        from repro.core.dominance import RankTable

        def boom(self, p, q):  # pragma: no cover - must not run
            raise AssertionError("IPO query must not test dominance")

        monkeypatch.setattr(RankTable, "dominates", boom)
        pref = Preference({"nom0": ["d0_v1", "d0_v0"], "nom1": ["d1_v3"]})
        assert isinstance(tree.query(pref), list)
