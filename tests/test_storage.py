"""Durability tests: WAL framing, snapshot round trips, kill-and-recover.

The centrepiece is the kill-and-recover differential suite: a durable
service absorbs interleaved queries and mutations (checkpointing
mid-stream), "crashes" (the in-memory object is dropped - every WAL
append was fsync'd, so nothing else is needed), recovers, and every
post-recovery answer is compared against a from-scratch skyline over
the recovered rows - the same oracle discipline ``tests/test_oracle.py``
and the update hammer established.
"""

from __future__ import annotations

import errno
import json
import random

import pytest

from repro.core.attributes import Schema, nominal, numeric_min
from repro.core.dataset import Dataset
from repro.core.skyline import skyline
from repro.datagen import SyntheticConfig, generate
from repro.datagen.generator import frequent_value_template
from repro.datagen.queries import generate_preferences
from repro import faults
from repro.exceptions import StorageError, StorageUnavailable
from repro.faults import FaultPlan, FaultRule
from repro.serve.service import SkylineService
from repro.storage import (
    CheckpointPolicy,
    DurableStore,
    WriteAheadLog,
    dataset_state,
    read_snapshot,
    restore_dataset,
    schema_from_fingerprint,
    write_snapshot,
)
from repro.updates.dataset import DynamicDataset

SCHEMA = Schema(
    [numeric_min("price"), numeric_min("dist"), nominal("g", ["T", "H", "M"])]
)


def small_dynamic() -> DynamicDataset:
    data = DynamicDataset.from_dataset(
        Dataset(
            SCHEMA,
            [(10, 5, "T"), (8, 7, "H"), (12, 4, "M"), (9, 9, "T")],
        )
    )
    data.append([(7, 8, "M"), (11, 3, "H")])
    data.delete([1])
    return data


class TestWriteAheadLog:
    def test_roundtrip_and_order(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"op": "insert", "version": 1, "rows": [[1, 2, "T"]]})
            wal.append({"op": "delete", "version": 2, "ids": [0]})
            wal.append({"op": "compact", "version": 3})
        records, torn = WriteAheadLog.read_records(path)
        assert not torn
        assert [r["op"] for r in records] == ["insert", "delete", "compact"]
        assert [r["version"] for r in records] == [1, 2, 3]

    def test_missing_and_empty_files_read_as_empty(self, tmp_path):
        assert WriteAheadLog.read_records(tmp_path / "absent.log") == ([], False)
        (tmp_path / "empty.log").write_bytes(b"")
        assert WriteAheadLog.read_records(tmp_path / "empty.log") == ([], False)

    def test_torn_tail_is_dropped_and_repaired(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"op": "insert", "version": 1, "rows": []})
            wal.append({"op": "insert", "version": 2, "rows": []})
        intact = path.read_bytes()
        # Crash mid-append: half a record at the tail.
        path.write_bytes(intact + b'deadbeef {"op": "ins')
        records, torn = WriteAheadLog.read_records(path)
        assert torn and [r["version"] for r in records] == [1, 2]
        # repair() also truncates, so appends can safely resume.
        records, torn = WriteAheadLog.repair(path)
        assert torn and len(records) == 2
        assert path.read_bytes() == intact
        with WriteAheadLog(path) as wal:
            wal.append({"op": "insert", "version": 3, "rows": []})
        records, torn = WriteAheadLog.read_records(path)
        assert not torn and [r["version"] for r in records] == [1, 2, 3]

    def test_injected_enospc_before_write_leaves_wal_intact(self, tmp_path):
        path = tmp_path / "wal.log"
        plan = FaultPlan(rules=[
            FaultRule(site="wal.append", kind="enospc", at=(2,)),
        ])
        with WriteAheadLog(path) as wal, faults.use(plan):
            wal.append({"op": "insert", "version": 1, "rows": []})
            with pytest.raises(OSError) as info:
                wal.append({"op": "insert", "version": 2, "rows": []})
            assert info.value.errno == errno.ENOSPC
            wal.append({"op": "insert", "version": 2, "rows": []})
        records, torn = WriteAheadLog.read_records(path)
        # ENOSPC fired before any byte left: no torn tail, no gap.
        assert not torn and [r["version"] for r in records] == [1, 2]

    def test_injected_enospc_mid_record_tears_then_repairs(self, tmp_path):
        """Disk fills *mid-frame*: the torn tail is detected and cut.

        The ``torn`` fault writes half the frame (flushed and fsync'd,
        as a real ENOSPC mid-write would leave it) before failing the
        append.  Readers must drop the partial record; ``repair()``
        must truncate it so appends can resume on a clean tail.
        """
        path = tmp_path / "wal.log"
        plan = FaultPlan(rules=[
            FaultRule(site="wal.append", kind="torn", at=(3,)),
        ])
        with WriteAheadLog(path) as wal, faults.use(plan):
            wal.append({"op": "insert", "version": 1, "rows": []})
            wal.append({"op": "insert", "version": 2, "rows": []})
            intact = path.read_bytes()
            with pytest.raises(OSError) as info:
                wal.append({"op": "insert", "version": 3, "rows": []})
            assert info.value.errno == errno.ENOSPC
        assert len(path.read_bytes()) > len(intact)  # partial frame on disk
        records, torn = WriteAheadLog.read_records(path)
        assert torn and [r["version"] for r in records] == [1, 2]
        records, torn = WriteAheadLog.repair(path)
        assert torn and path.read_bytes() == intact
        with WriteAheadLog(path) as wal:
            wal.append({"op": "insert", "version": 3, "rows": []})
        records, torn = WriteAheadLog.read_records(path)
        assert not torn and [r["version"] for r in records] == [1, 2, 3]

    def test_corrupt_crc_tail_is_dropped(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"op": "insert", "version": 1, "rows": []})
            wal.append({"op": "insert", "version": 2, "rows": []})
        raw = path.read_bytes()
        # Flip one byte inside the last record's body.
        path.write_bytes(raw[:-3] + bytes([raw[-3] ^ 0xFF]) + raw[-2:])
        records, torn = WriteAheadLog.read_records(path)
        assert torn and [r["version"] for r in records] == [1]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"op": "insert", "version": 1, "rows": []})
            wal.append({"op": "insert", "version": 2, "rows": []})
        raw = path.read_bytes()
        first_end = raw.index(b"\n") + 1
        mangled = b"garbage line\n" + raw[first_end:]
        path.write_bytes(mangled)
        with pytest.raises(StorageError, match="corrupt at record 0"):
            WriteAheadLog.read_records(path)

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        with pytest.raises(StorageError, match="closed"):
            wal.append({"op": "compact", "version": 1})


class TestSnapshot:
    def test_schema_fingerprint_roundtrip(self):
        from repro.ipo.serialize import schema_fingerprint

        fingerprint = schema_fingerprint(SCHEMA)
        rebuilt = schema_from_fingerprint(
            json.loads(json.dumps(fingerprint))
        )
        assert rebuilt == SCHEMA

    def test_dataset_state_roundtrip_preserves_everything(self, tmp_path):
        data = small_dynamic()
        path = write_snapshot(
            tmp_path / "snapshot-3.json", {"data": dataset_state(data)}
        )
        restored = restore_dataset(read_snapshot(path)["data"])
        assert restored.version == data.version == 2
        assert restored.compactions == data.compactions
        assert restored.ids == data.ids
        assert restored.num_slots == data.num_slots
        assert list(restored.canonical_rows) == list(data.canonical_rows)
        assert [restored.row(i) for i in restored.ids] == [
            data.row(i) for i in data.ids
        ]

    def test_restore_never_re_encodes(self, tmp_path, monkeypatch):
        data = small_dynamic()
        path = write_snapshot(
            tmp_path / "snapshot-3.json", {"data": dataset_state(data)}
        )
        document = read_snapshot(path)

        import repro.updates.dataset as dataset_module

        def poisoned(*args, **kwargs):
            raise AssertionError("restore must not re-encode rows")

        monkeypatch.setattr(dataset_module, "_encode_rows", poisoned)
        restored = restore_dataset(document["data"])
        assert list(restored.canonical_rows) == list(data.canonical_rows)

    def test_restored_dataset_keeps_mutating(self):
        data = small_dynamic()
        restored = restore_dataset(json.loads(json.dumps(
            {"data": dataset_state(data)}))["data"])
        new_ids = restored.append([(6, 6, "T")])
        assert new_ids == [restored.num_slots - 1]
        assert restored.version == data.version + 1

    def test_binary_payload_roundtrip(self, tmp_path, monkeypatch):
        """Above the threshold the canonical matrix moves to a sidecar.

        The document must read back identically to the inline flavour
        (typed rows: nominal ids as ints), and the sidecar is written
        before the document referencing it.
        """
        pytest.importorskip("numpy")
        import repro.storage.snapshot as snapshot_module

        monkeypatch.setattr(
            snapshot_module, "BINARY_PAYLOAD_THRESHOLD", 4
        )
        data = small_dynamic()
        path = write_snapshot(
            tmp_path / "snapshot-2.json", {"data": dataset_state(data)}
        )
        assert (tmp_path / "snapshot-2.npy").exists()
        restored = restore_dataset(read_snapshot(path)["data"])
        assert list(restored.canonical_rows) == list(data.canonical_rows)
        assert restored.canonical_rows[0][2] == data.canonical_rows[0][2]
        assert isinstance(restored.canonical_rows[0][2], int)  # nominal id
        assert [restored.row(i) for i in restored.ids] == [
            data.row(i) for i in data.ids
        ]

    def test_binary_payload_survives_service_recovery(
        self, tmp_path, monkeypatch
    ):
        pytest.importorskip("numpy")
        import repro.storage.snapshot as snapshot_module

        monkeypatch.setattr(
            snapshot_module, "BINARY_PAYLOAD_THRESHOLD", 8
        )
        base, template, service, prefs = make_durable_service(tmp_path)
        live = list(range(len(base)))
        churn(service, base, 3, seed=21, live=live)
        service.checkpoint()
        version = service.version
        answers = {
            pref: service.query(pref, use_cache=False).ids for pref in prefs
        }
        assert list((tmp_path / "state").glob("snapshot-*.npy"))
        del service
        recovered = SkylineService.recover(tmp_path / "state")
        assert recovered.version == version
        for pref, expected in answers.items():
            assert recovered.query(pref, use_cache=False).ids == expected

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = write_snapshot(
            tmp_path / "snapshot-0.json",
            {"data": dataset_state(small_dynamic())},
        )
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_read_rejects_foreign_and_unversioned_documents(self, tmp_path):
        alien = tmp_path / "other.json"
        alien.write_text('{"hello": "world"}')
        with pytest.raises(StorageError, match="not a repro snapshot"):
            read_snapshot(alien)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(
            '{"kind": "repro-durable-snapshot", "format_version": 99}'
        )
        with pytest.raises(StorageError, match="unsupported snapshot format"):
            read_snapshot(wrong)


class TestDurableStore:
    def _document(self, data):
        return {"data": dataset_state(data)}

    def test_checkpoint_rotates_and_prunes(self, tmp_path):
        store = DurableStore(tmp_path)
        data = small_dynamic()
        store.checkpoint(self._document(data), data.version)
        store.log({"op": "compact", "version": data.version + 1})
        data.append([(1, 1, "T")])
        store.checkpoint(self._document(data), data.version)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["snapshot-3.json", "wal-3.log"]
        assert store.ops_since_checkpoint == 0
        assert store.checkpoints == 2

    def test_policy_triggers_on_ops_and_bytes(self, tmp_path):
        store = DurableStore(tmp_path, CheckpointPolicy(every_ops=2))
        data = small_dynamic()
        store.checkpoint(self._document(data), data.version)
        store.log({"op": "compact", "version": 4})
        assert not store.should_checkpoint()
        store.log({"op": "compact", "version": 5})
        assert store.should_checkpoint()

        byted = DurableStore(
            tmp_path / "b", CheckpointPolicy(wal_bytes=64)
        )
        byted.checkpoint(self._document(data), data.version)
        assert not byted.should_checkpoint()
        byted.log({"op": "insert", "version": 4, "rows": [[1, 1, "T"]] * 8})
        assert byted.should_checkpoint()

    def test_policy_rejects_non_positive_knobs(self):
        with pytest.raises(StorageError, match="every_ops"):
            CheckpointPolicy(every_ops=0)
        with pytest.raises(StorageError, match="wal_bytes"):
            CheckpointPolicy(wal_bytes=-1)

    def test_recover_requires_a_snapshot(self, tmp_path):
        with pytest.raises(StorageError, match="nothing to recover"):
            DurableStore(tmp_path).recover()

    def test_recover_rejects_discontinuous_wal(self, tmp_path):
        store = DurableStore(tmp_path)
        data = small_dynamic()
        store.checkpoint(self._document(data), data.version)
        store.log({"op": "compact", "version": data.version + 2})  # gap!
        with pytest.raises(StorageError, match="does not continue"):
            DurableStore(tmp_path).recover()

    def test_recover_picks_newest_snapshot_and_resumes(self, tmp_path):
        store = DurableStore(tmp_path)
        data = small_dynamic()
        store.checkpoint(self._document(data), data.version)
        store.log({"op": "compact", "version": data.version + 1})
        recovered = DurableStore(tmp_path).recover()
        assert recovered.snapshot_version == data.version
        assert [r["version"] for r in recovered.tail] == [data.version + 1]
        assert not recovered.torn_tail

    def test_failed_append_fail_stops_until_checkpoint(self, tmp_path):
        """A failed WAL append must not let later appends create a gap.

        After a failed append the directory's history ends one batch
        behind memory; logging the *next* batch would write a version
        gap that recovery refuses forever.  The store therefore
        fail-stops, and a successful checkpoint (which snapshots the
        whole in-memory state, un-logged batch included) heals it.
        """
        store = DurableStore(tmp_path)
        data = small_dynamic()
        store.checkpoint(self._document(data), data.version)
        with pytest.raises(StorageError):  # object() is unserialisable
            store.log({"op": "insert", "version": 3, "rows": [object()]})
        with pytest.raises(StorageError, match="fail"):
            store.log({"op": "compact", "version": 4})  # would be a gap
        # The directory is still recoverable at the last durable state.
        assert DurableStore(tmp_path).recover().snapshot_version == 2
        # A checkpoint at the in-memory version heals the store.
        data.append([(1, 1, "T")])  # the "absorbed but unlogged" batch
        store.checkpoint(self._document(data), data.version)
        store.log({"op": "compact", "version": data.version + 1})
        recovered = DurableStore(tmp_path).recover()
        assert recovered.snapshot_version == data.version

    def test_unreadable_newest_snapshot_falls_back(self, tmp_path):
        """A half-visible checkpoint generation must not block recovery.

        Losing the newest snapshot's directory entry (crash before the
        checkpoint's directory fsync) leaves the older complete
        generation behind; recovery falls back to it as long as no
        batch was acknowledged on top of the lost snapshot.
        """
        store = DurableStore(tmp_path)
        data = small_dynamic()
        store.checkpoint(self._document(data), data.version)
        store.log({"op": "compact", "version": data.version + 1})
        # Crash mid-checkpoint at version 4: only a torn document
        # landed - no WAL rotation, no pruning (both run later).
        (tmp_path / "snapshot-4.json").write_text(
            '{"kind": "repro-durable-snapshot"'
        )
        recovered = DurableStore(tmp_path).recover()
        assert recovered.snapshot_version == 2
        assert [r["version"] for r in recovered.tail] == [3]

    def test_fallback_refused_when_acknowledged_history_would_drop(
        self, tmp_path
    ):
        store = DurableStore(tmp_path)
        data = small_dynamic()
        store.checkpoint(self._document(data), data.version)
        store.log({"op": "compact", "version": data.version + 1})
        # An unreadable snapshot *with* committed records on its WAL is
        # corruption, not a crash window - falling back would silently
        # drop the acknowledged version-5 batch.  Refuse loudly.
        (tmp_path / "snapshot-4.json").write_text("rotten")
        with WriteAheadLog(tmp_path / "wal-4.log") as wal:
            wal.append({"op": "compact", "version": 5})
        with pytest.raises(StorageError, match="acknowledged history"):
            DurableStore(tmp_path).recover()


def make_durable_service(tmp_path, **kwargs):
    """A small synthetic service with durability attached."""
    base = generate(
        SyntheticConfig(
            num_points=120, num_numeric=2, num_nominal=2,
            cardinality=4, seed=11,
        )
    )
    template = frequent_value_template(base)
    service = SkylineService(
        base, template, cache_capacity=32,
        storage_dir=tmp_path / "state", **kwargs,
    )
    prefs = generate_preferences(
        base, order=2, count=6, template=template, seed=3
    )
    return base, template, service, prefs


def oracle(service, pref):
    """From-scratch skyline over the served rows, in dynamic id space."""
    snap = service.data_snapshot()
    translate = (
        service._dynamic.snapshot_ids()
        if service._dynamic is not None
        else tuple(range(len(snap)))
    )
    return tuple(
        sorted(
            translate[i]
            for i in skyline(snap, pref, template=service.template).ids
        )
    )


def churn(service, base, rounds, *, seed, live, compact_at=None):
    """Interleave inserts/deletes/queries; returns the surviving ids."""
    extra = generate(
        SyntheticConfig(
            num_points=80, num_numeric=2, num_nominal=2,
            cardinality=4, seed=seed + 100,
        )
    )
    rng = random.Random(seed)
    for round_no in range(rounds):
        if round_no % 2 == 0:
            report = service.insert_rows(
                [extra.row(rng.randrange(len(extra))) for _ in range(3)]
            )
            live.extend(report.point_ids)
        else:
            victims = rng.sample(live, 2)
            service.delete_rows(victims)
            for victim in victims:
                live.remove(victim)
        if compact_at is not None and round_no == compact_at:
            remap = service.compact()
            live[:] = sorted(remap[i] for i in live)
    return live


class TestKillAndRecover:
    def test_recovery_answers_at_the_pre_crash_version(self, tmp_path):
        base, template, service, prefs = make_durable_service(tmp_path)
        live = list(range(len(base)))
        churn(service, base, 4, seed=5, live=live)
        for pref in prefs:
            service.query(pref)
        service.checkpoint()                      # snapshot mid-stream
        churn(service, base, 3, seed=9, live=live)  # WAL tail on top
        pre_crash_version = service.version
        pre_crash = {
            pref: service.query(pref, use_cache=False).ids for pref in prefs
        }
        del service                               # crash

        recovered = SkylineService.recover(tmp_path / "state")
        assert recovered.version == pre_crash_version
        assert sorted(recovered._dynamic.ids) == sorted(live)
        for pref in prefs + [None]:
            answer = recovered.query(pref, use_cache=False).ids
            assert answer == oracle(recovered, pref)
            if pref in pre_crash:
                assert answer == pre_crash[pref]

    def test_recovered_structures_match_fresh_builds(self, tmp_path):
        base, template, service, prefs = make_durable_service(tmp_path)
        live = list(range(len(base)))
        churn(service, base, 5, seed=2, live=live)
        service.checkpoint()
        churn(service, base, 2, seed=4, live=live)
        del service

        recovered = SkylineService.recover(tmp_path / "state")
        recovered.refresh_structures()   # churny tail may leave MDC stale
        for route in recovered.available_routes():
            for pref in prefs:
                assert recovered.query(
                    pref, use_cache=False, route=route
                ).ids == oracle(recovered, pref), route

    def test_stale_tree_checkpoint_recovers_to_fresh_answers(self, tmp_path):
        """Regression: a checkpoint taken while the IPO-tree was stale.

        The true refresh baseline of a stale tree died with the
        process, so recovery cannot diff its way back in sync - it must
        rework every member.  Before the fix, the first post-recovery
        refresh rebuilt the baseline from the *snapshot* data, compared
        old-vs-new as equal for members whose conditions changed, and
        served wrong answers on the ipo route with the stale flag
        cleared.
        """
        from repro.serve.planner import PlannerConfig

        base, template, service, prefs = make_durable_service(
            tmp_path,
            planner_config=PlannerConfig(incremental_update_ratio=0.001),
        )
        live = list(range(len(base)))
        for pref in prefs:           # queries arm the churn gate ...
            service.query(pref)
        churn(service, base, 4, seed=17, live=live)   # ... updates trip it
        assert service._tree_stale, "setup must leave the tree stale"
        service.checkpoint()
        version = service.version
        del service

        recovered = SkylineService.recover(tmp_path / "state")
        assert recovered.version == version
        assert not recovered._tree_stale
        for pref in prefs:
            assert recovered.query(
                pref, use_cache=False, route="ipo"
            ).ids == oracle(recovered, pref)

    def test_recovery_replays_a_compact_record(self, tmp_path):
        base, template, service, prefs = make_durable_service(tmp_path)
        live = list(range(len(base)))
        service.checkpoint()
        churn(service, base, 4, seed=6, live=live, compact_at=2)
        version = service.version
        answers = {
            pref: service.query(pref, use_cache=False).ids for pref in prefs
        }
        del service

        recovered = SkylineService.recover(tmp_path / "state")
        assert recovered.version == version
        for pref, expected in answers.items():
            assert recovered.query(pref, use_cache=False).ids == expected

    def test_recovered_service_is_durable_again(self, tmp_path):
        base, template, service, prefs = make_durable_service(tmp_path)
        live = list(range(len(base)))
        churn(service, base, 2, seed=8, live=live)
        del service

        first = SkylineService.recover(tmp_path / "state")
        churn(first, base, 2, seed=12, live=live)
        version = first.version
        answers = {
            pref: first.query(pref, use_cache=False).ids for pref in prefs
        }
        del first

        second = SkylineService.recover(tmp_path / "state")
        assert second.version == version
        for pref, expected in answers.items():
            assert second.query(pref, use_cache=False).ids == expected
            assert second.query(pref, use_cache=False).ids == oracle(
                second, pref
            )

    def test_auto_checkpoint_policy_bounds_the_wal(self, tmp_path):
        base, template, service, prefs = make_durable_service(
            tmp_path, checkpoint_every=2
        )
        live = list(range(len(base)))
        churn(service, base, 5, seed=3, live=live)
        store = service.storage
        assert store.checkpoints >= 2          # initial + automatic ones
        assert store.ops_since_checkpoint < 2
        version = service.version
        del service

        recovered = SkylineService.recover(tmp_path / "state")
        assert recovered.version == version
        for pref in prefs:
            assert recovered.query(
                pref, use_cache=False
            ).ids == oracle(recovered, pref)

    def test_torn_wal_tail_recovers_to_last_committed_batch(self, tmp_path):
        base, template, service, prefs = make_durable_service(tmp_path)
        live = list(range(len(base)))
        churn(service, base, 3, seed=7, live=live)
        version = service.version
        del service

        wal_path = next((tmp_path / "state").glob("wal-*.log"))
        with open(wal_path, "ab") as handle:
            handle.write(b'00000000 {"op": "insert", "vers')  # torn append
        recovered = SkylineService.recover(tmp_path / "state")
        assert recovered.version == version
        for pref in prefs:
            assert recovered.query(
                pref, use_cache=False
            ).ids == oracle(recovered, pref)

    def test_static_service_round_trips_at_version_zero(self, tmp_path):
        base, template, service, prefs = make_durable_service(tmp_path)
        answers = {
            pref: service.query(pref, use_cache=False).ids for pref in prefs
        }
        del service
        recovered = SkylineService.recover(tmp_path / "state")
        assert recovered.version == 0
        for pref, expected in answers.items():
            assert recovered.query(pref, use_cache=False).ids == expected

    def test_constructing_over_existing_state_is_refused(self, tmp_path):
        base, template, service, prefs = make_durable_service(tmp_path)
        del service
        with pytest.raises(StorageError, match="recover"):
            SkylineService(
                generate(SyntheticConfig(num_points=10, seed=1)),
                storage_dir=tmp_path / "state",
            )

    def test_checkpoint_requires_storage(self):
        service = SkylineService(
            generate(SyntheticConfig(num_points=10, seed=1))
        )
        with pytest.raises(StorageError, match="storage_dir"):
            service.checkpoint()

    def test_failed_log_degrades_service_until_checkpoint(self, tmp_path):
        """A WAL append failure degrades the write path, not the service.

        Logging is write-ahead: the failing batch raises
        ``StorageUnavailable`` with *nothing* applied, the service
        enters degraded read-only mode (queries keep answering, further
        mutations are rejected before touching state), and a successful
        ``checkpoint()`` re-arms writes; recovery then agrees with the
        healed service.
        """
        base, template, service, prefs = make_durable_service(tmp_path)
        service.insert_rows([base.row(0)])
        service.storage._wal.close()      # induce an append failure
        with pytest.raises(StorageUnavailable):
            service.insert_rows([base.row(1)])
        version_after_failure = service.version
        assert service.health == "degraded"
        with pytest.raises(StorageUnavailable, match="read-only"):
            service.insert_rows([base.row(2)])
        with pytest.raises(StorageUnavailable, match="read-only"):
            service.delete_rows([0])
        assert service.version == version_after_failure  # nothing applied
        assert service.query(prefs[0], use_cache=False).version == (
            version_after_failure
        )                                 # reads keep serving
        stats = service.stats()
        assert stats.health == "degraded"
        assert stats.degraded_transitions == 1
        service.checkpoint()              # heals store, re-arms writes
        assert service.health == "healthy"
        assert service.stats().recoveries == 1
        service.insert_rows([base.row(3)])
        version = service.version
        answers = {
            pref: service.query(pref, use_cache=False).ids for pref in prefs
        }
        del service
        recovered = SkylineService.recover(tmp_path / "state")
        assert recovered.version == version
        for pref, expected in answers.items():
            assert recovered.query(pref, use_cache=False).ids == expected

    def test_enospc_mid_record_degrades_then_recovery_agrees(self, tmp_path):
        """End-to-end torn append: degrade, repair via checkpoint, recover.

        An injected disk-full *mid-frame* leaves a torn tail on the live
        WAL.  The mutation must raise ``StorageUnavailable`` with
        nothing applied, a checkpoint must repair the store (the torn
        bytes never reach a recovered state), and recovery must land on
        exactly the acknowledged version.
        """
        base, template, service, prefs = make_durable_service(tmp_path)
        service.insert_rows([base.row(0)])
        acked_version = service.version
        plan = FaultPlan(rules=[
            FaultRule(site="wal.append", kind="torn", times=1),
        ])
        with faults.use(plan):
            with pytest.raises(StorageUnavailable):
                service.insert_rows([base.row(1)])
        assert plan.injected() == {"wal.append:torn": 1}
        wal_path = next((tmp_path / "state").glob("wal-*.log"))
        _, torn = WriteAheadLog.read_records(wal_path)
        assert torn                        # the partial frame is on disk
        assert service.health == "degraded"
        assert service.version == acked_version
        service.checkpoint()               # snapshot + fresh WAL
        assert service.health == "healthy"
        service.insert_rows([base.row(2)])
        version = service.version
        answers = {
            pref: service.query(pref, use_cache=False).ids for pref in prefs
        }
        del service
        recovered = SkylineService.recover(tmp_path / "state")
        assert recovered.version == version
        for pref, expected in answers.items():
            assert recovered.query(pref, use_cache=False).ids == expected

    def test_recovered_version_stamps_serve_results(self, tmp_path):
        base, template, service, prefs = make_durable_service(tmp_path)
        live = list(range(len(base)))
        churn(service, base, 2, seed=13, live=live)
        version = service.version
        del service
        recovered = SkylineService.recover(tmp_path / "state")
        result = recovered.query(prefs[0], use_cache=False)
        assert result.version == version


class TestServeCLI:
    def run(self, argv):
        from repro.serve.__main__ import main

        return main(argv)

    @pytest.mark.parametrize("flag", ["--workers", "--partitions", "--batch",
                                      "--concurrency"])
    @pytest.mark.parametrize("value", ["0", "-2", "x"])
    def test_non_positive_pool_flags_are_argparse_errors(self, flag, value,
                                                         capsys):
        with pytest.raises(SystemExit) as excinfo:
            self.run([flag, value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err and flag in err

    def test_storage_flags_require_storage_dir(self, capsys):
        for argv in (["--recover"], ["--checkpoint"],
                     ["--checkpoint-every", "4"]):
            with pytest.raises(SystemExit) as excinfo:
                self.run(argv)
            assert excinfo.value.code == 2
        assert "--storage-dir" in capsys.readouterr().err

    def test_checkpoint_then_recover_round_trip(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        small = ["--points", "80", "--queries", "10", "--cardinality", "4",
                 "--concurrency", "2", "--workloads", "hot"]
        assert self.run(small + ["--storage-dir", state,
                                 "--checkpoint"]) == 0
        assert self.run(small + ["--storage-dir", state, "--recover"]) == 0
        err = capsys.readouterr().err
        assert "recovered from" in err
