"""Tests for the full-materialisation baseline."""

import math

import pytest

from repro.core.preferences import Preference
from repro.core.skyline import skyline
from repro.datagen.generator import SyntheticConfig, generate
from repro.datagen.queries import generate_preferences
from repro.exceptions import IndexError_, UnsupportedQueryError
from repro.materialize.full import (
    FullMaterialization,
    preferences_per_attribute,
    total_combinations,
)


@pytest.fixture(scope="module")
def workload():
    return generate(
        SyntheticConfig(
            num_points=120, num_numeric=2, num_nominal=2, cardinality=3,
            seed=41,
        )
    )


class TestCounting:
    def test_preferences_per_attribute_small(self):
        # c=3, orders 0..2: 1 + 3 + 6 = 10.
        assert preferences_per_attribute(3, 2) == 10
        # all orders: + 3! = 16.
        assert preferences_per_attribute(3, 3) == 16

    def test_order_clamped_to_cardinality(self):
        assert preferences_per_attribute(3, 99) == preferences_per_attribute(3, 3)

    def test_total_combinations_multiplies(self):
        assert total_combinations([3, 3], 2) == 100

    def test_explosion_vs_paper_bound(self):
        """The enumeration stays below the paper's (c*c!)^m' bound."""
        c, m = 5, 2
        enumerated = total_combinations([c] * m, c)
        assert enumerated <= (c * math.factorial(c)) ** m


class TestConstruction:
    def test_entry_count_matches_formula(self, workload):
        index = FullMaterialization(workload, max_order=2)
        assert index.num_entries == total_combinations([3, 3], 2) == 100
        assert index.num_entries_expected == 100

    def test_guard_against_explosion(self):
        data = generate(
            SyntheticConfig(
                num_points=20, num_numeric=1, num_nominal=2, cardinality=8,
                seed=1,
            )
        )
        with pytest.raises(IndexError_):
            FullMaterialization(data, max_order=8, max_entries=10_000)

    def test_negative_order_rejected(self, workload):
        with pytest.raises(IndexError_):
            FullMaterialization(workload, max_order=-1)

    def test_interning_detects_shared_skylines(self, workload):
        index = FullMaterialization(workload, max_order=2)
        assert index.unique_skylines <= index.num_entries
        # Zipfian nominal data always shares some skylines.
        assert index.unique_skylines < index.num_entries


class TestQueries:
    def test_lookup_matches_bruteforce(self, workload):
        index = FullMaterialization(workload, max_order=2)
        for pref in generate_preferences(workload, 2, 10, seed=2):
            expected = sorted(
                skyline(workload, pref, algorithm="bruteforce").ids
            )
            assert index.query(pref) == expected

    def test_empty_preference(self, workload):
        index = FullMaterialization(workload, max_order=1)
        assert index.query() == sorted(skyline(workload).ids)

    def test_order_beyond_materialised_raises(self, workload):
        index = FullMaterialization(workload, max_order=1)
        with pytest.raises(UnsupportedQueryError):
            index.query(Preference({"nom0": ["d0_v0", "d0_v1"]}))

    def test_storage_dwarfs_ipo_tree(self, workload):
        """The measurable version of Section 3's dismissal."""
        from repro.ipo.tree import IPOTree

        naive = FullMaterialization(workload, max_order=2)
        tree = IPOTree.build(workload)
        assert naive.num_entries > tree.node_count()
        assert naive.preprocessing_seconds > 0
