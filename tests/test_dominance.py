"""Unit tests for the dominance engine (rank tables)."""

import pytest

from repro.core.attributes import Schema, nominal, numeric_max, numeric_min
from repro.core.dataset import Dataset
from repro.core.dominance import (
    DOMINATED,
    DOMINATES,
    EQUAL,
    INCOMPARABLE,
    RankTable,
    minima,
)
from repro.core.preferences import Preference
from repro.exceptions import PreferenceError, RefinementError


@pytest.fixture
def table(vacation_schema):
    return RankTable.compile(
        vacation_schema, Preference({"Hotel-group": "H < M < *"})
    )


class TestCompile:
    def test_nominal_ranks_follow_section_4_2(self, vacation_schema):
        table = RankTable.compile(
            vacation_schema, Preference({"Hotel-group": "H < M < *"})
        )
        # Domain order T, H, M -> value ids 0, 1, 2.
        assert table.nominal_rank(2, 1) == 1  # H listed first
        assert table.nominal_rank(2, 2) == 2  # M listed second
        assert table.nominal_rank(2, 0) == 3  # T unlisted -> cardinality

    def test_default_ranks_are_cardinality(self, vacation_schema):
        table = RankTable.compile(vacation_schema)
        assert [table.nominal_rank(2, v) for v in range(3)] == [3, 3, 3]

    def test_listed_count(self, vacation_schema):
        table = RankTable.compile(
            vacation_schema, Preference({"Hotel-group": "H < M < *"})
        )
        assert table.listed_count(2) == 2
        assert table.listed_count(0) == 0

    def test_numeric_dim_has_no_rank_table(self, table):
        with pytest.raises(ValueError):
            table.nominal_rank(0, 0)

    def test_template_merge(self, vacation_schema):
        template = Preference({"Hotel-group": "H < *"})
        table = RankTable.compile(
            vacation_schema,
            Preference({"Hotel-group": "H < M < *"}),
            template=template,
        )
        assert table.nominal_rank(2, 1) == 1

    def test_template_conflict_raises(self, vacation_schema):
        template = Preference({"Hotel-group": "H < *"})
        with pytest.raises(RefinementError):
            RankTable.compile(
                vacation_schema,
                Preference({"Hotel-group": "M < *"}),
                template=template,
            )

    def test_invalid_preference_raises(self, vacation_schema):
        with pytest.raises(PreferenceError):
            RankTable.compile(
                vacation_schema, Preference({"Hotel-group": "X < *"})
            )


class TestDominates:
    def test_numeric_dominance(self, vacation_data, table):
        rows = vacation_data.canonical_rows
        # a (1600, 4, T) dominates b (2400, 1, T): better price and class.
        assert table.dominates(rows[0], rows[1])
        assert not table.dominates(rows[1], rows[0])

    def test_nominal_preference_drives_dominance(self, vacation_data):
        rows = vacation_data.canonical_rows
        table = RankTable.compile(
            vacation_data.schema, Preference({"Hotel-group": "H < M < *"})
        )
        # c (3000,5,H) vs f (3000,3,M): equal price, better class, H < M.
        assert table.dominates(rows[2], rows[5])

    def test_unlisted_values_block_dominance(self, vacation_data):
        rows = vacation_data.canonical_rows
        table = RankTable.compile(vacation_data.schema)  # no preference
        # a (1600,4,T) vs e (2400,2,M): better numerics but T and M are
        # incomparable without a preference.
        assert not table.dominates(rows[0], rows[4])

    def test_equal_rows_do_not_dominate(self, vacation_schema):
        data = Dataset(vacation_schema, [(1, 1, "T"), (1, 1, "T")])
        table = RankTable.compile(vacation_schema)
        assert not table.dominates(data.canonical(0), data.canonical(1))

    def test_strictness_required(self, vacation_schema):
        data = Dataset(vacation_schema, [(1, 1, "T"), (1, 1, "H")])
        table = RankTable.compile(
            vacation_schema, Preference({"Hotel-group": "T < H < *"})
        )
        assert table.dominates(data.canonical(0), data.canonical(1))
        assert not table.dominates(data.canonical(1), data.canonical(0))


class TestCompare:
    def test_four_outcomes(self, vacation_schema):
        data = Dataset(
            vacation_schema,
            [(1, 5, "T"), (2, 4, "T"), (1, 5, "T"), (1, 4, "H"), (2, 5, "H")],
        )
        table = RankTable.compile(vacation_schema)
        rows = data.canonical_rows
        assert table.compare(rows[0], rows[1]) is DOMINATES
        assert table.compare(rows[1], rows[0]) is DOMINATED
        assert table.compare(rows[0], rows[2]) is EQUAL
        assert table.compare(rows[3], rows[4]) is INCOMPARABLE

    def test_incomparable_on_nominal_tie(self, vacation_schema):
        data = Dataset(vacation_schema, [(1, 5, "T"), (1, 5, "H")])
        table = RankTable.compile(vacation_schema)
        assert (
            table.compare(data.canonical(0), data.canonical(1))
            is INCOMPARABLE
        )


class TestScore:
    def test_score_is_rank_sum(self, vacation_data):
        table = RankTable.compile(
            vacation_data.schema, Preference({"Hotel-group": "H < M < *"})
        )
        # a = (1600, -4, T[rank 3]) -> 1600 - 4 + 3
        assert table.score(vacation_data.canonical(0)) == 1600 - 4 + 3

    def test_score_monotone_under_dominance(self, vacation_data):
        table = RankTable.compile(
            vacation_data.schema, Preference({"Hotel-group": "H < M < *"})
        )
        rows = vacation_data.canonical_rows
        for p in rows:
            for q in rows:
                if table.dominates(p, q):
                    assert table.score(p) < table.score(q)

    def test_rank_vector(self, vacation_data):
        table = RankTable.compile(
            vacation_data.schema, Preference({"Hotel-group": "H < M < *"})
        )
        assert table.rank_vector(vacation_data.canonical(2)) == (
            3000.0,
            -5.0,
            1,
        )


class TestMinima:
    def test_minima_matches_bob(self, vacation_data):
        table = RankTable.compile(vacation_data.schema)
        result = minima(
            vacation_data.canonical_rows, vacation_data.ids, table
        )
        assert sorted(result) == [0, 2, 4, 5]

    def test_minima_keeps_duplicates(self, vacation_schema):
        data = Dataset(vacation_schema, [(1, 5, "T"), (1, 5, "T")])
        table = RankTable.compile(vacation_schema)
        assert sorted(
            minima(data.canonical_rows, data.ids, table)
        ) == [0, 1]
