"""Planner decision rules: each route forced via its signals."""

from __future__ import annotations

import pytest

from repro.core.preferences import Preference
from repro.datagen.generator import SyntheticConfig, generate
from repro.serve.planner import Planner, PlannerConfig, PlanSignals, ROUTES
from repro.serve.service import SkylineService


def signals(**overrides) -> PlanSignals:
    """A fully-equipped service's signals; override per test."""
    base = dict(
        dataset_rows=5000,
        preference_order=2,
        tree_available=True,
        tree_covers_query=True,
        adaptive_available=True,
        affected_members=5,
        template_skyline_size=100,
        mdc_available=True,
        backend_vectorized=False,
    )
    base.update(overrides)
    return PlanSignals(**base)


class TestDecisionRules:
    def test_small_dataset_routes_to_kernel(self):
        plan = Planner().plan(signals(dataset_rows=10))
        assert plan.route == "kernel"
        assert "10 rows" in plan.reason

    def test_covered_query_routes_to_tree(self):
        plan = Planner().plan(signals())
        assert plan.route == "ipo"

    def test_uncovered_query_skips_tree(self):
        plan = Planner().plan(signals(tree_covers_query=False))
        assert plan.route == "adaptive"

    def test_few_affected_members_routes_to_adaptive(self):
        plan = Planner().plan(
            signals(tree_available=False, affected_members=10)
        )
        assert plan.route == "adaptive"

    def test_many_affected_members_routes_to_mdc(self):
        plan = Planner().plan(
            signals(tree_available=False, affected_members=80)
        )
        assert plan.route == "mdc"

    def test_affected_threshold_is_configurable(self):
        lenient = Planner(PlannerConfig(max_affected_fraction=1.0))
        strict = Planner(PlannerConfig(max_affected_fraction=0.0))
        sig = signals(tree_available=False, affected_members=80)
        assert lenient.plan(sig).route == "adaptive"
        assert strict.plan(sig).route == "mdc"

    def test_adaptive_fallback_without_mdc(self):
        plan = Planner().plan(
            signals(
                tree_available=False,
                mdc_available=False,
                affected_members=80,
            )
        )
        assert plan.route == "adaptive"

    def test_kernel_when_nothing_available(self):
        plan = Planner().plan(
            signals(
                tree_available=False,
                adaptive_available=False,
                mdc_available=False,
            )
        )
        assert plan.route == "kernel"

    def test_forced_route_wins(self):
        for route in ROUTES:
            plan = Planner(PlannerConfig(forced_route=route)).plan(signals())
            assert plan.route == route
            assert "forced" in plan.reason

    def test_empty_template_skyline_counts_as_unaffected(self):
        sig = signals(
            tree_available=False, affected_members=0, template_skyline_size=0
        )
        assert sig.affected_fraction == 0.0
        assert Planner().plan(sig).route == "adaptive"


def bare_scan_signals(**overrides) -> PlanSignals:
    """No auxiliary structure: the planner must pick a base-data scan."""
    base = dict(
        tree_available=False,
        tree_covers_query=False,
        adaptive_available=False,
        affected_members=0,
        mdc_available=False,
        parallel_available=True,
        parallel_workers=4,
        dataset_rows=200_000,
        dimensions=6,
    )
    base.update(overrides)
    return signals(**base)


class TestParallelGate:
    """Rule 7: the partitioned executor upgrades the kernel fallback."""

    def test_large_scan_routes_to_parallel(self):
        plan = Planner().plan(bare_scan_signals())
        assert plan.route == "parallel"
        assert "workers" in plan.reason

    def test_requires_configured_executor(self):
        plan = Planner().plan(bare_scan_signals(parallel_available=False))
        assert plan.route == "kernel"

    def test_requires_at_least_two_workers(self):
        plan = Planner().plan(bare_scan_signals(parallel_workers=1))
        assert plan.route == "kernel"

    def test_small_scans_stay_on_kernel(self):
        plan = Planner().plan(bare_scan_signals(dataset_rows=10_000))
        assert plan.route == "kernel"

    def test_high_dimensional_scans_stay_on_kernel(self):
        plan = Planner().plan(bare_scan_signals(dimensions=20))
        assert plan.route == "kernel"

    def test_thresholds_configurable(self):
        eager = Planner(PlannerConfig(parallel_min_rows=1_000))
        plan = eager.plan(bare_scan_signals(dataset_rows=10_000))
        assert plan.route == "parallel"
        narrow = Planner(PlannerConfig(parallel_max_dims=4))
        assert narrow.plan(bare_scan_signals()).route == "kernel"

    def test_index_routes_still_win(self):
        # Indexes search inside SKY(R~); a configured pool never
        # overrides them.
        plan = Planner().plan(
            bare_scan_signals(mdc_available=True)
        )
        assert plan.route == "mdc"


class TestConfigValidation:
    def test_unknown_forced_route_rejected(self):
        with pytest.raises(ValueError):
            PlannerConfig(forced_route="teleport")

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            PlannerConfig(max_affected_fraction=1.5)

    def test_negative_small_dataset_rows(self):
        with pytest.raises(ValueError):
            PlannerConfig(small_dataset_rows=-1)

    def test_parallel_threshold_bounds(self):
        with pytest.raises(ValueError):
            PlannerConfig(parallel_min_rows=-1)
        with pytest.raises(ValueError):
            PlannerConfig(parallel_max_dims=0)


class TestEndToEndRouting:
    """The service's signal gathering drives the expected routes."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return generate(
            SyntheticConfig(
                num_points=400,
                num_numeric=2,
                num_nominal=2,
                cardinality=6,
                seed=3,
            )
        )

    def test_tiny_dataset_served_by_kernel(self, vacation_data):
        service = SkylineService(vacation_data, cache_capacity=0)
        result = service.query(Preference({"Hotel-group": "T < *"}))
        assert result.route == "kernel"

    def test_covered_query_served_by_tree(self, dataset):
        service = SkylineService(dataset, cache_capacity=0)
        result = service.query()
        assert result.route == "ipo"

    def test_truncated_tree_falls_back(self, dataset):
        # IPO Tree-1 materialises one value per dimension: a query on a
        # rare value cannot be answered by lookup.
        service = SkylineService(dataset, ipo_k=1, cache_capacity=0)
        rare = dataset.most_frequent("nom0", 6)[-1]
        result = service.query(Preference({"nom0": (rare,)}))
        assert result.route in ("adaptive", "mdc")

    def test_routes_disabled_structures_never_chosen(self, dataset):
        service = SkylineService(
            dataset,
            with_tree=False,
            with_adaptive=False,
            with_mdc=False,
            cache_capacity=0,
        )
        expected = (
            ("bitset", "kernel") if service.bitset is not None else ("kernel",)
        )
        assert service.available_routes() == expected
        result = service.query(Preference({"nom0": "d0_v0 < *"}))
        # 300 rows sit far below bitset_min_rows, so the planner still
        # picks the plain kernel even though the route is available.
        assert result.route == "kernel"

    def test_large_scan_routes_to_bitset_when_available(self, dataset):
        # Lowered threshold stands in for a 100k+ dataset; with no
        # auxiliary structures the scan regime picks the packed kernel.
        service = SkylineService(
            dataset,
            planner_config=PlannerConfig(bitset_min_rows=100),
            with_tree=False,
            with_adaptive=False,
            with_mdc=False,
            cache_capacity=0,
        )
        if service.bitset is None:
            pytest.skip("vectorized bitset tier unavailable (no NumPy)")
        result = service.query(Preference({"nom0": "d0_v0 < *"}))
        assert result.route == "bitset"
        kernel = service.query(
            Preference({"nom0": "d0_v0 < *"}), use_cache=False,
            route="kernel",
        )
        assert result.ids == kernel.ids

    def test_plan_reason_is_surfaced(self, dataset):
        service = SkylineService(dataset, cache_capacity=0)
        result = service.query()
        assert result.reason


class TestTreeAutoBuild:
    def test_huge_tree_estimate_skips_build(self):
        dataset = generate(
            SyntheticConfig(
                num_points=200,
                num_numeric=1,
                num_nominal=3,
                cardinality=10,
                seed=1,
            )
        )
        service = SkylineService(
            dataset, max_tree_nodes=100, cache_capacity=0
        )
        assert service.tree is None
        assert "ipo" not in service.available_routes()

    def test_forced_build_overrides_estimate(self, vacation_data):
        service = SkylineService(
            vacation_data, with_tree=True, max_tree_nodes=0, cache_capacity=0
        )
        assert service.tree is not None


class TestIncrementalGate:
    """The churn gate routing to the maintained template skyline."""

    def test_churn_heavy_routes_to_incremental(self):
        plan = Planner().plan(
            signals(incremental_available=True, update_query_ratio=0.5)
        )
        assert plan.route == "incremental"
        assert "churn-heavy" in plan.reason

    def test_low_churn_keeps_index_routes(self):
        plan = Planner().plan(
            signals(incremental_available=True, update_query_ratio=0.1)
        )
        assert plan.route == "ipo"

    def test_requires_a_maintainer(self):
        plan = Planner().plan(
            signals(incremental_available=False, update_query_ratio=9.0)
        )
        assert plan.route == "ipo"

    def test_tiny_datasets_still_go_to_kernel(self):
        plan = Planner().plan(
            signals(
                dataset_rows=10,
                incremental_available=True,
                update_query_ratio=9.0,
            )
        )
        assert plan.route == "kernel"

    def test_ratio_threshold_configurable(self):
        eager = Planner(PlannerConfig(incremental_update_ratio=0.0))
        sig = signals(incremental_available=True, update_query_ratio=0.0)
        assert eager.plan(sig).route == "incremental"
        with pytest.raises(ValueError):
            PlannerConfig(incremental_update_ratio=-0.1)

    def test_incremental_is_a_known_route(self):
        assert "incremental" in ROUTES
        assert PlannerConfig(forced_route="incremental").forced_route == \
            "incremental"
