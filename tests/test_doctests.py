"""Execute the doctest examples embedded in the library's docstrings."""

import doctest
import importlib

import pytest

# Fetched via importlib: attribute access like ``repro.core.skyline``
# would resolve to the re-exported *function*, not the module.
MODULE_NAMES = [
    "repro.bench.measure",
    "repro.core.attributes",
    "repro.core.dataset",
    "repro.core.orders",
    "repro.core.preferences",
    "repro.core.skyline",
    "repro.datagen.nominal",
    "repro.datagen.nursery",
    "repro.updates.dataset",
    "repro.updates.incremental",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    result = doctest.testmod(module)
    assert result.failed == 0
    assert result.attempted > 0, f"{name} lost its doctest examples"
