"""Unit tests for the synthetic data generators."""

import random
from collections import Counter

import pytest

from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
    synthetic_schema,
)
from repro.datagen.nominal import ZipfSampler, zipf_column
from repro.datagen.numeric import (
    DISTRIBUTIONS,
    anticorrelated_point,
    correlated_point,
    independent_point,
    numeric_matrix,
)


class TestNumericDistributions:
    def test_values_in_unit_interval(self):
        rng = random.Random(0)
        for distribution in DISTRIBUTIONS:
            for row in numeric_matrix(rng, 200, 3, distribution):
                assert all(0.0 <= v <= 1.0 for v in row)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            numeric_matrix(random.Random(0), 5, 2, "weird")

    def test_correlated_points_hug_diagonal(self):
        rng = random.Random(1)
        spreads = [
            max(p) - min(p) for p in (correlated_point(rng, 3) for _ in range(300))
        ]
        assert sum(spreads) / len(spreads) < 0.25

    def test_anticorrelated_sum_is_stable(self):
        rng = random.Random(2)
        sums = [sum(anticorrelated_point(rng, 3)) for _ in range(300)]
        mean = sum(sums) / len(sums)
        assert 1.2 < mean < 1.8  # around 3 * 0.5
        spread = max(sums) - min(sums)
        # sum = 3 * base with base ~ N(0.5, 0.05): the empirical spread
        # stays well under the ~2.0+ of three iid uniforms.
        assert spread < 1.5

    def test_anticorrelated_coordinates_spread(self):
        """Individual coordinates must not all sit at 0.5."""
        rng = random.Random(3)
        firsts = [anticorrelated_point(rng, 3)[0] for _ in range(300)]
        assert max(firsts) - min(firsts) > 0.5

    def test_single_dimension_anticorrelated(self):
        rng = random.Random(4)
        assert 0 <= anticorrelated_point(rng, 1)[0] <= 1

    def test_skyline_size_ordering(self):
        """Anti-correlated skylines dwarf correlated ones (the reason the
        paper reports anti-correlated results)."""
        from repro.core.skyline import skyline

        sizes = {}
        for distribution in DISTRIBUTIONS:
            data = generate(
                SyntheticConfig(
                    num_points=300,
                    num_numeric=3,
                    num_nominal=0,
                    distribution=distribution,
                    seed=8,
                )
            )
            sizes[distribution] = len(skyline(data))
        assert sizes["correlated"] < sizes["independent"] < sizes["anticorrelated"]


class TestZipf:
    def test_pmf_sums_to_one(self):
        sampler = ZipfSampler(20, 1.0)
        assert abs(sum(sampler.pmf) - 1.0) < 1e-9

    def test_pmf_decreasing(self):
        sampler = ZipfSampler(10, 1.0)
        assert all(
            sampler.pmf[i] >= sampler.pmf[i + 1] for i in range(9)
        )

    def test_theta_zero_is_uniform(self):
        sampler = ZipfSampler(5, 0.0)
        assert all(abs(p - 0.2) < 1e-9 for p in sampler.pmf)

    def test_empirical_frequencies_follow_pmf(self):
        rng = random.Random(5)
        sampler = ZipfSampler(4, 1.0)
        counts = Counter(sampler.sample_many(rng, 20_000))
        for vid, probability in enumerate(sampler.pmf):
            assert abs(counts[vid] / 20_000 - probability) < 0.02

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(5, -1.0)

    def test_zipf_column_values_from_domain(self):
        rng = random.Random(6)
        column = zipf_column(rng, 100, ("a", "b", "c"), 1.0)
        assert set(column) <= {"a", "b", "c"}
        assert len(column) == 100


class TestSyntheticConfig:
    def test_defaults_match_table4_shape(self):
        config = SyntheticConfig()
        assert config.num_numeric == 3
        assert config.num_nominal == 2
        assert config.cardinality == 20
        assert config.theta == 1.0
        assert config.distribution == "anticorrelated"

    def test_with_replaces_fields(self):
        config = SyntheticConfig().with_(num_points=99)
        assert config.num_points == 99
        assert config.cardinality == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_points": -1},
            {"num_numeric": -1},
            {"num_numeric": 0, "num_nominal": 0},
            {"cardinality": 0},
            {"distribution": "bogus"},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticConfig(**kwargs)


class TestGenerate:
    def test_shape(self):
        config = SyntheticConfig(
            num_points=50, num_numeric=2, num_nominal=3, cardinality=5, seed=1
        )
        data = generate(config)
        assert len(data) == 50
        assert len(data.schema) == 5
        assert data.schema.num_nominal == 3

    def test_deterministic_in_seed(self):
        config = SyntheticConfig(num_points=40, seed=9)
        assert list(generate(config)) == list(generate(config))

    def test_different_seeds_differ(self):
        a = generate(SyntheticConfig(num_points=40, seed=1))
        b = generate(SyntheticConfig(num_points=40, seed=2))
        assert list(a) != list(b)

    def test_nominal_only_dataset(self):
        data = generate(
            SyntheticConfig(num_points=30, num_numeric=0, num_nominal=2,
                            cardinality=3, seed=4)
        )
        assert len(data.schema) == 2

    def test_schema_domains(self):
        schema = synthetic_schema(SyntheticConfig(cardinality=4))
        assert schema.spec("nom0").domain == (
            "d0_v0",
            "d0_v1",
            "d0_v2",
            "d0_v3",
        )

    def test_zipf_bias_visible_in_data(self):
        data = generate(
            SyntheticConfig(num_points=2000, cardinality=10, theta=1.0, seed=3)
        )
        counts = data.value_counts("nom0")
        assert counts["d0_v0"] > counts["d0_v9"]


class TestFrequentValueTemplate:
    def test_template_prefers_most_frequent(self):
        data = generate(SyntheticConfig(num_points=500, seed=6))
        template = frequent_value_template(data)
        for name in data.schema.nominal_names:
            assert template[name].choices == (data.most_frequent(name, 1)[0],)

    def test_higher_order_template(self):
        data = generate(SyntheticConfig(num_points=500, seed=6))
        template = frequent_value_template(data, per_attribute_order=3)
        assert template.order == 3
