"""Regression tests for the writer-preferring read-write lock.

The headline regression: a reader that already holds the read lock and
re-enters it while a writer is queued used to deadlock (the re-entering
reader waited for the queued writer, the writer waited for the reader's
first hold).  Re-entrant reads now proceed immediately; role upgrades
(read -> write and write -> read) raise instead of hanging.
"""

from __future__ import annotations

import threading

import pytest

from repro.updates.rwlock import ReadWriteLock

#: Generous watchdog: the scenarios finish in milliseconds unless the
#: lock regresses into the deadlock this file guards against.
TIMEOUT = 5.0


def run_with_watchdog(target) -> None:
    """Run ``target`` in a thread; fail the test instead of hanging."""
    worker = threading.Thread(target=target, daemon=True)
    worker.start()
    worker.join(TIMEOUT)
    assert not worker.is_alive(), "scenario deadlocked"


class TestReentrantRead:
    def test_plain_reentrant_read(self):
        lock = ReadWriteLock()
        with lock.read():
            with lock.read():
                pass

    def test_reentrant_read_with_queued_writer_does_not_deadlock(self):
        lock = ReadWriteLock()
        outcome = {}

        def scenario():
            reader_inside = threading.Event()
            writer_queued = threading.Event()
            release_reader = threading.Event()

            def reader():
                with lock.read():
                    reader_inside.set()
                    writer_queued.wait(TIMEOUT)
                    # The regression: this second acquisition used to
                    # block behind the queued writer forever.
                    with lock.read():
                        outcome["reentered"] = True
                    release_reader.wait(TIMEOUT)

            def writer():
                reader_inside.wait(TIMEOUT)
                # Signal "queued" only once acquire_write() is really
                # blocked inside the condition; a short delay after
                # starting the acquisition keeps the race honest.
                timer = threading.Timer(0.05, writer_queued.set)
                timer.start()
                with lock.write():
                    outcome["wrote"] = True

            threads = [
                threading.Thread(target=reader, daemon=True),
                threading.Thread(target=writer, daemon=True),
            ]
            for thread in threads:
                thread.start()
            release_reader.set()
            for thread in threads:
                thread.join(TIMEOUT)
            outcome["done"] = all(not t.is_alive() for t in threads)

        run_with_watchdog(scenario)
        assert outcome.get("reentered") and outcome.get("wrote")
        assert outcome.get("done")

    def test_writer_still_excludes_readers(self):
        lock = ReadWriteLock()
        order = []

        def scenario():
            in_write = threading.Event()

            def writer():
                with lock.write():
                    in_write.set()
                    order.append("write-start")
                    # Give the reader a chance to (wrongly) slip in.
                    threading.Event().wait(0.05)
                    order.append("write-end")

            def reader():
                in_write.wait(TIMEOUT)
                with lock.read():
                    order.append("read")

            threads = [
                threading.Thread(target=writer, daemon=True),
                threading.Thread(target=reader, daemon=True),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(TIMEOUT)

        run_with_watchdog(scenario)
        assert order == ["write-start", "write-end", "read"]


class TestUpgradeGuards:
    def test_read_to_write_upgrade_raises(self):
        lock = ReadWriteLock()
        with lock.read():
            with pytest.raises(RuntimeError, match="upgrades"):
                lock.acquire_write()

    def test_write_to_read_downgrade_raises(self):
        lock = ReadWriteLock()
        with lock.write():
            with pytest.raises(RuntimeError, match="downgrades"):
                lock.acquire_read()

    def test_write_lock_is_not_reentrant(self):
        lock = ReadWriteLock()
        with lock.write():
            with pytest.raises(RuntimeError, match="not reentrant"):
                lock.acquire_write()

    def test_unbalanced_releases_raise(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError, match="no read lock"):
            lock.release_read()
        with pytest.raises(RuntimeError, match="no write lock"):
            lock.release_write()
