"""Fault injection: deadlines, saturation, drain, bad reloads.

Each test makes the server misbehave-adjacent conditions *happen* -
a stalling client, a full admission gate, a shutdown racing in-flight
work, a corrupt config file - and asserts the documented recovery:
honest status codes, old config kept, in-flight work completing, and
a server that is still (or verifiably no longer) serving afterwards.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
)
from repro.datagen.queries import generate_preferences
from repro.net import MetricsRegistry, NetClient, ServerConfig, ServerThread
from repro.serve.service import SkylineService


def build_service(points: int = 150, cache: int = 32) -> SkylineService:
    """A small fresh service (mutation tests need isolation)."""
    dataset = generate(
        SyntheticConfig(
            num_points=points, num_numeric=2, num_nominal=2,
            cardinality=4, seed=3,
        )
    )
    return SkylineService(
        dataset, frequent_value_template(dataset, 1), cache_capacity=cache
    )


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------
def test_slow_loris_header_answers_408_within_deadline():
    config = ServerConfig(port=0, read_timeout=0.3, idle_timeout=5.0,
                          access_log=False)
    with ServerThread(build_service(), config) as thread:
        with socket.create_connection(
            (thread.host, thread.port), timeout=5.0
        ) as sock:
            sock.sendall(b"POST /query HTTP/1.1\r\nContent-")  # ... stall
            started = time.perf_counter()
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
            elapsed = time.perf_counter() - started
        response = b"".join(chunks)
        assert response.startswith(b"HTTP/1.1 408")
        assert json.loads(
            response.partition(b"\r\n\r\n")[2]
        )["error"]["kind"] == "header-timeout"
        assert elapsed < 5.0  # the deadline fired, not the test timeout
        with NetClient(thread.host, thread.port) as client:
            assert client.healthz().status == 200


def test_idle_keep_alive_connection_is_closed_quietly():
    config = ServerConfig(port=0, idle_timeout=0.2, access_log=False)
    with ServerThread(build_service(), config) as thread:
        with socket.create_connection(
            (thread.host, thread.port), timeout=5.0
        ) as sock:
            # Send nothing at all: the server must hang up on its own,
            # without wasting an error response on the silent peer.
            assert sock.recv(65536) == b""


def test_request_deadline_answers_504():
    # Deterministic deadline overrun: the single worker thread is
    # busy, so the admitted request waits in the executor queue past
    # its deadline - exactly the overload the 504 is for.
    config = ServerConfig(port=0, request_timeout=0.1, worker_threads=1,
                          access_log=False)
    with ServerThread(build_service(), config) as thread:
        blocker = thread.server._executor.submit(time.sleep, 1.0)
        try:
            with NetClient(thread.host, thread.port) as client:
                response = client.query(None)
                assert response.status == 504
                assert response.json["error"]["kind"] == "deadline"
                # Ops routes never touch the executor: still live.
                assert client.healthz().status == 200
        finally:
            blocker.result(timeout=10)
        # Worker freed -> the same request now succeeds.
        with NetClient(thread.host, thread.port) as client:
            assert client.query(None).status == 200


def test_client_abort_mid_exchange_does_not_leak_connections():
    registry = MetricsRegistry()
    config = ServerConfig(port=0, access_log=False, idle_timeout=0.3)
    with ServerThread(build_service(), config, registry=registry) as thread:
        for _ in range(3):
            sock = socket.create_connection(
                (thread.host, thread.port), timeout=5.0
            )
            # Hard RST as soon as the request is out: the server's
            # write/drain hits a connection error, not a traceback.
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                b"\x01\x00\x00\x00\x00\x00\x00\x00",
            )
            sock.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
            sock.close()
        deadline = time.time() + 5.0
        gauge = registry.get("repro_net_open_connections")
        open_connections = gauge.value
        while time.time() < deadline and open_connections() > 0:
            time.sleep(0.05)
        assert open_connections() == 0
        with NetClient(thread.host, thread.port) as client:
            assert client.healthz().status == 200


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------
def test_saturated_gate_answers_429_then_recovers():
    registry = MetricsRegistry()
    config = ServerConfig(port=0, max_inflight=1, max_queue=0,
                          access_log=False)
    with ServerThread(build_service(), config, registry=registry) as thread:
        # Deterministically occupy the single execution slot.
        thread.run_coroutine(thread.server._admission.acquire())
        try:
            with NetClient(thread.host, thread.port) as client:
                rejected = client.query(None)
                assert rejected.status == 429
                assert rejected.json["error"]["kind"] == "admission"
                assert client.healthz().status == 200  # ops route unaffected
                raw = client.request("POST", "/query", {"preference": None})
                assert raw.status == 429
                assert "Retry-After" in {
                    k.title() for k in raw.headers
                }
        finally:
            thread.run_coroutine(thread.server._admission.release())
        with NetClient(thread.host, thread.port) as client:
            recovered = client.query(None)
            assert recovered.status == 200  # slot freed -> admitted again
        rejected = registry.get("repro_http_rejected_total")
        assert rejected.value("admission") >= 2


def test_retry_after_header_value_is_configurable():
    config = ServerConfig(port=0, max_inflight=1, max_queue=0,
                          retry_after_seconds=7, access_log=False)
    with ServerThread(build_service(), config) as thread:
        thread.run_coroutine(thread.server._admission.acquire())
        try:
            with NetClient(thread.host, thread.port) as client:
                response = client.query(None)
                assert response.status == 429
                header = {
                    k.lower(): v for k, v in response.headers.items()
                }["retry-after"]
                assert header == "7"
        finally:
            thread.run_coroutine(thread.server._admission.release())


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------
def test_drain_completes_inflight_and_refuses_new():
    service = build_service(points=300)
    prefs = generate_preferences(
        service.dataset, 3, 150, template=service.template, seed=5
    )
    config = ServerConfig(port=0, access_log=False)
    outcome = {}

    with ServerThread(service, config) as thread:
        host, port = thread.host, thread.port

        def big_batch():
            with NetClient(host, port, timeout=60) as client:
                outcome["batch"] = client.batch(prefs, use_cache=False)

        worker = threading.Thread(target=big_batch)
        worker.start()
        # Let the batch reach the executor before pulling the plug.
        deadline = time.time() + 5.0
        while (
            time.time() < deadline
            and thread.server._admission.inflight == 0
        ):
            time.sleep(0.002)
        assert thread.server._admission.inflight > 0
        thread.stop()  # graceful drain: waits for the batch

        worker.join(timeout=60)
        assert not worker.is_alive()
        # The in-flight batch completed with a real answer...
        assert outcome["batch"].status == 200
        assert len(outcome["batch"].json["results"]) == len(prefs)
        # ... and the listener is gone: new connections are refused.
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2.0)


def test_draining_healthz_reports_503(monkeypatch):
    """While draining, /healthz flips to 503 'draining'."""
    config = ServerConfig(port=0, access_log=False)
    with ServerThread(build_service(), config) as thread:

        async def _flip():
            thread.server._draining = True

        thread.run_coroutine(_flip())
        with NetClient(thread.host, thread.port) as client:
            health = client.healthz()
            assert health.status == 503
            assert health.json["status"] == "draining"
            refused = client.query(None)
            assert refused.status == 503
            assert refused.json["error"]["kind"] == "draining"

        async def _unflip():
            thread.server._draining = False

        thread.run_coroutine(_unflip())
        with NetClient(thread.host, thread.port) as client:
            assert client.healthz().status == 200


def test_server_thread_stops_cleanly_without_traffic():
    with ServerThread(build_service(), ServerConfig(port=0)) as thread:
        pass
    assert not thread._thread.is_alive()


# ---------------------------------------------------------------------------
# hot reload
# ---------------------------------------------------------------------------
def test_invalid_reload_keeps_old_config(tmp_path):
    config_path = tmp_path / "service.json"
    config_path.write_text(json.dumps({"max_inflight": 5, "max_queue": 9}))
    config = ServerConfig(port=0, access_log=False)
    with ServerThread(
        build_service(), config, config_path=str(config_path)
    ) as thread:
        with NetClient(thread.host, thread.port) as client:
            first = client.reload()
            assert first.status == 200
            assert first.json["ok"] is True
            assert "max_inflight" in first.json["changed"]
            assert thread.server.config.max_inflight == 5
            generation = first.json["generation"]

            for bad in (
                "{not json",                          # unparseable
                json.dumps({"max_inflight": "lots"}), # wrong type
                json.dumps({"max_inflight": 0}),      # out of range
                json.dumps({"surprise_knob": 1}),     # unknown key
            ):
                config_path.write_text(bad)
                failed = client.reload()
                assert failed.status == 400
                assert failed.json["ok"] is False
                assert failed.json["error"]
                # Old config stays in force, generation unchanged.
                assert thread.server.config.max_inflight == 5
                assert thread.server.config.max_queue == 9
                health = client.healthz()
                assert health.json["config_generation"] == generation

            # And a later valid file still applies cleanly.
            config_path.write_text(json.dumps({"max_inflight": 3}))
            again = client.reload()
            assert again.json["ok"] is True
            assert thread.server.config.max_inflight == 3
            assert again.json["generation"] == generation + 1


def test_reload_reports_non_reloadable_fields(tmp_path):
    config_path = tmp_path / "service.json"
    config_path.write_text(
        json.dumps({"host": "0.0.0.0", "port": 1234, "max_queue": 4})
    )
    with ServerThread(
        build_service(), ServerConfig(port=0, access_log=False),
        config_path=str(config_path),
    ) as thread:
        with NetClient(thread.host, thread.port) as client:
            report = client.reload()
        assert report.json["ok"] is True
        assert set(report.json["ignored_non_reloadable"]) == {"host", "port"}
        assert thread.server.config.max_queue == 4
        assert thread.server.config.port == 0  # the bound socket's spec


def test_reload_without_config_file_reports_absence():
    with ServerThread(
        build_service(), ServerConfig(port=0, access_log=False)
    ) as thread:
        with NetClient(thread.host, thread.port) as client:
            report = client.reload()
        assert report.status == 400
        assert report.json["ok"] is False
        assert "config file" in report.json["error"]


def test_reload_resizes_live_cache_and_planner(tmp_path):
    service = build_service(cache=64)
    config_path = tmp_path / "service.json"
    config_path.write_text(json.dumps({
        "cache_capacity": 2,
        "planner": {"forced_route": "mdc"},
    }))
    with ServerThread(
        service, ServerConfig(port=0, access_log=False),
        config_path=str(config_path),
    ) as thread:
        with NetClient(thread.host, thread.port) as client:
            assert client.reload().json["ok"] is True
            assert service.cache.capacity == 2
            forced = client.query(None, use_cache=False)
            assert forced.status == 200
            assert forced.json["route"] == "mdc"
