"""Batched evaluation: positional answers, dedup, cache interplay."""

from __future__ import annotations

import pytest

from repro.core.preferences import Preference
from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
)
from repro.datagen.queries import generate_preferences
from repro.serve.driver import replay
from repro.serve.service import BatchReport, SkylineService


@pytest.fixture(scope="module")
def dataset():
    return generate(
        SyntheticConfig(
            num_points=600,
            num_numeric=2,
            num_nominal=2,
            cardinality=5,
            seed=13,
        )
    )


@pytest.fixture(scope="module")
def template(dataset):
    return frequent_value_template(dataset)


def fresh_service(dataset, template, **kwargs) -> SkylineService:
    kwargs.setdefault("cache_capacity", 32)
    return SkylineService(dataset, template, **kwargs)


def sample_preferences(dataset, template, n=10, seed=3):
    return generate_preferences(
        dataset, 2, n, template=template, seed=seed
    )


class TestBatchAnswers:
    def test_positional_equivalence_with_sequential(self, dataset, template):
        service = fresh_service(dataset, template)
        prefs = sample_preferences(dataset, template) + [
            None,
            Preference.empty(),
        ]
        expected = [
            service.query(p, use_cache=False).ids for p in prefs
        ]
        batch = service.evaluate_batch(prefs, use_cache=False)
        assert [r.ids for r in batch] == expected

    def test_duplicates_share_one_execution(self, dataset, template):
        service = fresh_service(dataset, template)
        prefs = sample_preferences(dataset, template, n=4)
        stream = prefs * 3  # every query three times
        report = service.submit_batch(stream, use_cache=False)
        assert isinstance(report, BatchReport)
        assert report.unique_queries == 4
        assert report.duplicate_queries == 8
        assert report.executed_queries == 4
        routes = [r.route for r in report.results]
        assert routes.count("batch") == 8
        # Duplicates carry the identical answer.
        for result in report.results:
            first = next(
                r for r in report.results if r.key == result.key
            )
            assert result.ids == first.ids

    def test_aliased_spellings_deduplicate(self, dataset, template):
        # A full-domain chain and its dropped-tail prefix are the same
        # partial order; canonicalizing up front must merge them.
        name = dataset.schema.nominal_names[0]
        domain = dataset.schema.spec(name).domain
        full = Preference({name: tuple(domain)})
        prefix = Preference({name: tuple(domain[:-1])})
        service = fresh_service(dataset, template=None)
        report = service.submit_batch([full, prefix], use_cache=False)
        assert report.unique_queries == 1
        assert report.duplicate_queries == 1
        assert report.results[0].ids == report.results[1].ids


class TestBatchCacheInterplay:
    def test_second_batch_is_all_cache_hits(self, dataset, template):
        service = fresh_service(dataset, template)
        prefs = sample_preferences(dataset, template, n=6)
        first = service.submit_batch(prefs)
        assert first.cache_hits == 0
        second = service.submit_batch(prefs)
        assert second.cache_hits == 6
        assert [r.ids for r in first.results] == [
            r.ids for r in second.results
        ]
        assert all(r.route == "cache" for r in second.results)

    def test_one_lookup_per_unique_key(self, dataset, template):
        service = fresh_service(dataset, template)
        prefs = sample_preferences(dataset, template, n=3) * 4
        service.submit_batch(prefs)
        stats = service.stats()
        # 3 unique keys -> 3 misses, no matter how many duplicates.
        assert stats.cache.misses == 3
        assert stats.cache.hits == 0

    def test_use_cache_false_records_bypass_per_unique(
        self, dataset, template
    ):
        service = fresh_service(dataset, template)
        prefs = sample_preferences(dataset, template, n=5) * 2
        service.submit_batch(prefs, use_cache=False)
        stats = service.stats()
        assert stats.cache.bypasses == 5
        assert stats.cache.lookups == 0

    def test_batch_counts_in_service_stats(self, dataset, template):
        service = fresh_service(dataset, template)
        prefs = sample_preferences(dataset, template, n=2) * 3
        service.submit_batch(prefs, use_cache=False)
        stats = service.stats()
        assert stats.queries == 6
        assert stats.route_counts.get("batch") == 4


class TestForcedRouteBatches:
    def test_forced_route_is_never_served_from_cache(self, dataset, template):
        # Mirrors query()'s contract: a configured forced route must
        # actually execute, even for keys the cache already holds.
        from repro.serve.planner import PlannerConfig

        prefs = sample_preferences(dataset, template, n=4)
        warm = fresh_service(dataset, template)
        forced = fresh_service(
            dataset,
            template,
            planner_config=PlannerConfig(forced_route="kernel"),
        )
        forced.submit_batch(prefs)  # warm the cache
        report = forced.submit_batch(prefs)
        assert all(r.route == "kernel" for r in report.results)
        assert report.cache_hits == 0
        expected = [warm.query(p, use_cache=False).ids for p in prefs]
        assert [r.ids for r in report.results] == expected

    def test_forced_answers_still_stored_for_planned_queries(
        self, dataset, template
    ):
        from repro.serve.planner import PlannerConfig

        pref = sample_preferences(dataset, template, n=1)[0]
        service = fresh_service(dataset, template)
        service.planner.config = PlannerConfig(forced_route="kernel")
        service.submit_batch([pref])
        service.planner.config = PlannerConfig()
        follow_up = service.query(pref)
        assert follow_up.cached and follow_up.route == "cache"


class TestBatchedReplay:
    def test_driver_batch_mode_matches_routes(self, dataset, template):
        service = fresh_service(dataset, template)
        prefs = sample_preferences(dataset, template, n=8) * 2
        report = replay(
            service,
            prefs,
            name="batched",
            concurrency=2,
            batch_size=4,
            use_cache=False,
        )
        assert report.queries == 16
        assert sum(report.route_counts.values()) == 16
        assert report.throughput_qps > 0

    def test_batch_size_validation(self, dataset, template):
        service = fresh_service(dataset, template)
        with pytest.raises(ValueError):
            replay(service, [], batch_size=0)


class TestParallelRouteThroughService:
    def test_parallel_route_available_and_agrees(self, dataset, template):
        service = fresh_service(dataset, template, workers=2)
        assert "parallel" in service.available_routes()
        service.parallel.min_rows = 0  # force real partitioning at 600 rows
        for pref in sample_preferences(dataset, template, n=4, seed=11):
            parallel = service.query(pref, use_cache=False, route="parallel")
            kernel = service.query(pref, use_cache=False, route="kernel")
            assert parallel.ids == kernel.ids

    def test_parallel_route_absent_without_workers(self, dataset, template):
        service = fresh_service(dataset, template)
        assert "parallel" not in service.available_routes()
