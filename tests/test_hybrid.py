"""Unit tests for the hybrid index (IPO Tree-k + SFS-A fallback)."""

import pytest

from repro.core.preferences import Preference
from repro.core.skyline import skyline
from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
)
from repro.datagen.queries import generate_preferences
from repro.hybrid.hybrid import HybridIndex, RoutingStats


@pytest.fixture(scope="module")
def workload():
    return generate(
        SyntheticConfig(
            num_points=200, num_numeric=2, num_nominal=2, cardinality=8,
            seed=55,
        )
    )


class TestRouting:
    def test_popular_query_uses_tree(self, workload):
        hybrid = HybridIndex(workload, values_per_attribute=3)
        popular = workload.most_frequent("nom0", 1)[0]
        hybrid.query(Preference({"nom0": [popular]}))
        assert hybrid.stats.tree_queries == 1
        assert hybrid.stats.fallback_queries == 0

    def test_unpopular_query_falls_back(self, workload):
        hybrid = HybridIndex(workload, values_per_attribute=2)
        unpopular = workload.most_frequent("nom0", 8)[-1]
        hybrid.query(Preference({"nom0": [unpopular]}))
        assert hybrid.stats.fallback_queries == 1

    def test_fallback_ratio(self, workload):
        hybrid = HybridIndex(workload, values_per_attribute=2)
        popular = workload.most_frequent("nom0", 1)[0]
        unpopular = workload.most_frequent("nom0", 8)[-1]
        hybrid.query(Preference({"nom0": [popular]}))
        hybrid.query(Preference({"nom0": [unpopular]}))
        assert hybrid.stats.total == 2
        assert hybrid.stats.fallback_ratio == 0.5

    def test_idle_ratio_is_zero(self):
        assert RoutingStats().fallback_ratio == 0.0


class TestCorrectness:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_all_routes_return_true_skyline(self, workload, order):
        hybrid = HybridIndex(workload, values_per_attribute=3)
        for pref in generate_preferences(
            workload, order, 8, seed=order, weighting="uniform"
        ):
            expected = sorted(skyline(workload, pref).ids)
            assert hybrid.query(pref) == expected
        # Uniform weighting over cardinality 8 with k=3 must have
        # exercised both routes with overwhelming probability.
        assert hybrid.stats.tree_queries + hybrid.stats.fallback_queries == 8

    def test_with_template(self, workload):
        template = frequent_value_template(workload)
        hybrid = HybridIndex(
            workload, template, values_per_attribute=3
        )
        for pref in generate_preferences(
            workload, 2, 6, template=template, seed=3
        ):
            expected = sorted(
                skyline(workload, pref, template=template).ids
            )
            assert hybrid.query(pref) == expected


class TestFootprint:
    def test_storage_combines_components(self, workload):
        hybrid = HybridIndex(workload, values_per_attribute=3)
        assert hybrid.storage_bytes() == (
            hybrid.tree.storage_bytes() + hybrid.adaptive.storage_bytes()
        )

    def test_preprocessing_time_recorded(self, workload):
        hybrid = HybridIndex(workload, values_per_attribute=3)
        assert hybrid.preprocessing_seconds > 0
