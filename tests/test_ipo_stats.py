"""Tests for IPO-tree size analysis and the history-driven tree."""

import pytest

from repro.core.preferences import Preference
from repro.core.skyline import skyline
from repro.datagen.generator import SyntheticConfig, generate
from repro.datagen.queries import (
    generate_preferences,
    popular_values_from_history,
)
from repro.ipo.stats import (
    analyze,
    full_tree_node_count,
    naive_materialization_count,
    paper_upper_bound,
    restricted_tree_node_count,
)
from repro.ipo.tree import IPOTree


class TestSizeFormulas:
    def test_full_tree_figure2(self):
        # Figure 2: c = 3, m' = 2 -> 21 nodes.
        assert full_tree_node_count([3, 3]) == 21

    def test_full_tree_matches_built_tree(self, two_nominal_data):
        tree = IPOTree.build(two_nominal_data)
        assert tree.node_count() == full_tree_node_count([3, 3])

    def test_restricted_tree(self):
        # IPO Tree-k with k = 2 on two dims: 1 + 3 + 9 = 13.
        assert restricted_tree_node_count([2, 2]) == 13

    def test_single_level(self):
        assert full_tree_node_count([5]) == 1 + 6

    def test_empty(self):
        assert full_tree_node_count([]) == 1

    def test_naive_count_dwarfs_tree(self):
        c, m = 10, 2
        assert naive_materialization_count([c] * m) > 100 * full_tree_node_count(
            [c] * m
        )

    def test_paper_upper_bound_holds(self):
        for c, m in [(3, 1), (4, 2), (5, 2)]:
            assert naive_materialization_count([c] * m) <= paper_upper_bound(c, m)


class TestAnalyze:
    @pytest.fixture(scope="class")
    def tree(self):
        data = generate(
            SyntheticConfig(
                num_points=150, num_numeric=2, num_nominal=2, cardinality=4,
                seed=19,
            )
        )
        return IPOTree.build(data)

    def test_node_count_consistent(self, tree):
        analysis = analyze(tree)
        assert analysis.node_count == tree.node_count()
        assert sum(analysis.nodes_per_level) == analysis.node_count

    def test_level_shape(self, tree):
        analysis = analyze(tree)
        assert analysis.nodes_per_level == (1, 5, 25)

    def test_payload_totals(self, tree):
        analysis = analyze(tree)
        assert analysis.payload_ids_total == sum(
            len(node.disqualified) for node in tree.root.walk()
        )
        assert sum(analysis.payload_ids_per_level) == analysis.payload_ids_total
        assert analysis.payload_ids_per_level[0] == 0  # root stores S, not A

    def test_mean_and_max(self, tree):
        analysis = analyze(tree)
        assert 0 <= analysis.mean_payload <= analysis.max_payload
        assert analysis.max_payload <= analysis.skyline_size
        assert analysis.empty_payload_nodes >= 1  # root at least


class TestHistoryDrivenTree:
    @pytest.fixture(scope="class")
    def workload(self):
        return generate(
            SyntheticConfig(
                num_points=250, num_numeric=2, num_nominal=2, cardinality=8,
                seed=29,
            )
        )

    def test_popular_values_ranked_by_usage(self, workload):
        history = generate_preferences(workload, 2, 50, seed=3)
        popular = popular_values_from_history(
            history, workload.schema, k=3
        )
        for name in workload.schema.nominal_names:
            assert len(popular[name]) == 3
            counts = {}
            for pref in history:
                for v in pref[name].choices:
                    counts[v] = counts.get(v, 0) + 1
            best = popular[name][0]
            assert counts.get(best, 0) == max(counts.values())

    def test_cold_start_pads_with_domain_values(self, workload):
        popular = popular_values_from_history([], workload.schema, k=2)
        for name in workload.schema.nominal_names:
            assert len(popular[name]) == 2

    def test_tree_from_history_answers_history_like_queries(self, workload):
        history = generate_preferences(workload, 2, 60, seed=5)
        popular = popular_values_from_history(
            history, workload.schema, k=7
        )
        tree = IPOTree.build(workload, values_per_attribute=popular)
        answered = 0
        for pref in history[:20]:
            try:
                got = tree.query(pref)
            except Exception:
                continue
            answered += 1
            assert got == sorted(skyline(workload, pref).ids)
        # Most of the history replays on the tree (the rest would be
        # routed to SFS-A by the hybrid deployment).
        assert answered >= 12

    def test_explicit_bad_value_rejected(self, workload):
        from repro.exceptions import PreferenceError

        with pytest.raises(PreferenceError):
            IPOTree.build(
                workload, values_per_attribute={"nom0": ["nope"]}
            )
