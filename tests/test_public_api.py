"""The public API surface: imports, __all__, end-to-end quickstart."""

import repro


class TestSurface:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_key_classes_exposed(self):
        for name in (
            "IPOTree",
            "AdaptiveSFS",
            "HybridIndex",
            "SFSDirect",
            "Preference",
            "Dataset",
            "Schema",
            "skyline",
        ):
            assert name in repro.__all__


class TestQuickstartFlow:
    """The README's quickstart, as an executable contract."""

    def test_end_to_end(self):
        schema = repro.Schema(
            [
                repro.numeric_min("Price"),
                repro.numeric_max("Hotel-class"),
                repro.nominal("Hotel-group", ["Tulips", "Horizon", "Mozilla"]),
            ]
        )
        packages = repro.Dataset(
            schema,
            [
                (1600, 4, "Tulips"),
                (2400, 1, "Tulips"),
                (3000, 5, "Horizon"),
                (3600, 4, "Horizon"),
                (2400, 2, "Mozilla"),
                (3000, 3, "Mozilla"),
            ],
        )
        alice = repro.Preference({"Hotel-group": "Tulips < Mozilla < *"})

        one_shot = repro.skyline(packages, alice)
        tree = repro.IPOTree.build(packages)
        index = repro.AdaptiveSFS(packages)

        assert tuple(tree.query(alice)) == one_shot.ids
        assert tuple(index.query(alice)) == one_shot.ids
        assert one_shot.rows()[0] == (1600, 4, "Tulips")
