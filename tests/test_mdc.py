"""Unit tests for minimal disqualifying conditions."""

import pytest

from repro.core.preferences import ImplicitPreference, Preference
from repro.core.skyline import skyline
from repro.datagen.generator import SyntheticConfig, generate
from repro.mdc.mdc import (
    DisqualifyingCondition,
    compute_mdcs,
    minimal_conditions,
    template_positions,
)


class TestDisqualifyingCondition:
    def test_subsumes_subset(self):
        small = DisqualifyingCondition({2: 1})
        big = DisqualifyingCondition({2: 1, 3: 0})
        assert small.subsumes(big)
        assert not big.subsumes(small)

    def test_subsumes_requires_same_winner(self):
        a = DisqualifyingCondition({2: 1})
        b = DisqualifyingCondition({2: 0})
        assert not a.subsumes(b)

    def test_empty_condition_subsumes_everything(self):
        empty = DisqualifyingCondition({})
        assert empty.subsumes(DisqualifyingCondition({2: 1}))

    def test_equality_and_hash(self):
        assert DisqualifyingCondition({1: 2}) == DisqualifyingCondition({1: 2})
        assert hash(DisqualifyingCondition({1: 2})) == hash(
            DisqualifyingCondition({1: 2})
        )

    def test_satisfied_by_label(self):
        cond = DisqualifyingCondition({2: 1})
        loser = (0.0, 0.0, 2)
        assert cond.satisfied_by({2: 1}, {}, loser)
        assert not cond.satisfied_by({2: 0}, {}, loser)
        assert not cond.satisfied_by({}, {}, loser)

    def test_satisfied_by_template_chain(self):
        cond = DisqualifyingCondition({2: 1})
        loser = (0.0, 0.0, 2)
        # Template lists winner (id 1) at position 0; loser unlisted.
        assert cond.satisfied_by({}, {2: {1: 0}}, loser)
        # Template lists loser before winner: not satisfied.
        assert not cond.satisfied_by({}, {2: {2: 0, 1: 1}}, loser)
        # Template lists winner before loser: satisfied.
        assert cond.satisfied_by({}, {2: {1: 0, 2: 1}}, loser)


class TestMinimalConditions:
    def test_removes_supersets(self):
        small = DisqualifyingCondition({2: 1})
        big = DisqualifyingCondition({2: 1, 3: 0})
        assert minimal_conditions([big, small]) == [small]

    def test_deduplicates(self):
        a = DisqualifyingCondition({2: 1})
        assert minimal_conditions([a, DisqualifyingCondition({2: 1})]) == [a]

    def test_keeps_incomparable_conditions(self):
        a = DisqualifyingCondition({2: 1})
        b = DisqualifyingCondition({3: 0})
        assert set(minimal_conditions([a, b])) == {a, b}

    def test_empty_input(self):
        assert minimal_conditions([]) == []


class TestComputeMdcs:
    def test_vacation_example(self, vacation_data):
        """On Table 1, f is disqualified exactly by H < M or T < M."""
        base = skyline(vacation_data).ids  # {a, c, e, f}
        mdcs = compute_mdcs(vacation_data, base)
        f_id = 5
        winners = {
            tuple(sorted(c.winners.items())) for c in mdcs[f_id]
        }
        # f = (3000, 3, M).  c = (3000, 5, H) needs (H, M); a = (1600, 4, T)
        # needs (T, M).  Value ids: T=0, H=1, M=2, dimension 2.
        assert winners == {((2, 1),), ((2, 0),)}

    def test_point_with_no_conditions(self, vacation_data):
        """c = (3000, 5, H) has the best class: no one can ever beat it...

        unless they dominate numerically.  a is cheaper but has a lower
        class, so no condition exists for c from a; check c's MDCs only
        involve realisable dominators.
        """
        base = skyline(vacation_data).ids
        mdcs = compute_mdcs(vacation_data, base)
        c_id = 2
        # Nobody matches c's class 5, so every candidate loses a numeric
        # dimension: no disqualifying condition at all.
        assert mdcs[c_id] == []

    def test_conditions_predict_disqualification(self, small_synthetic):
        """MDC containment == actual skyline membership loss.

        For a sample of first-order label combinations, the points whose
        MDCs fire must be exactly the base-skyline points missing from
        the refined skyline.
        """
        data = small_synthetic
        base_ids = skyline(data).ids
        mdcs = compute_mdcs(data, base_ids)
        schema = data.schema
        nominal_dims = schema.nominal_indices
        rows = data.canonical_rows

        labels_cases = [
            {nominal_dims[0]: 0},
            {nominal_dims[0]: 2, nominal_dims[1]: 1},
            {nominal_dims[1]: 3},
        ]
        for labels in labels_cases:
            pref = {}
            for dim, vid in labels.items():
                spec = schema[dim]
                pref[spec.name] = ImplicitPreference((spec.domain[vid],))
            refined = set(
                skyline(data, Preference(pref), ids=base_ids).ids
            )
            predicted_dropped = {
                p
                for p in base_ids
                if any(
                    cond.satisfied_by(labels, {}, rows[p])
                    for cond in mdcs[p]
                )
            }
            assert predicted_dropped == set(base_ids) - refined

    def test_explicit_candidates(self, vacation_data):
        base = skyline(vacation_data).ids
        full = compute_mdcs(vacation_data, base)
        restricted = compute_mdcs(
            vacation_data, base, candidates=list(vacation_data.ids)
        )
        # Supplying all points as candidates must not change minimal
        # conditions (skyline candidates are sufficient).
        for p in base:
            assert set(full[p]) == set(restricted[p])


class TestTemplatePositions:
    def test_positions(self, vacation_schema):
        template = Preference({"Hotel-group": "H < M < *"})
        positions = template_positions(template, vacation_schema)
        assert positions == {2: {1: 0, 2: 1}}

    def test_empty_template(self, vacation_schema):
        assert template_positions(Preference.empty(), vacation_schema) == {}
