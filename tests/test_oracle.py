"""The differential oracle: every algorithm x backend vs brute force.

One parametrized harness is the single correctness authority for the
skyline computation layer, replacing scattered pairwise equivalence
checks: ~50 seeded cases (randomized nominal datasets x randomized
implicit-preference partial orders), each evaluated by **every**
algorithm (bnl, sfs, sfs_d, dandc, bitmap, bbs, bruteforce) on
**every** available engine backend (python, numpy, parallel) and
compared against the brute-force result computed on the pure-Python
reference backend.

The brute-force/python pairing is the executable definition of the
paper's dominance semantics (Definition 3 over the partial orders of
Definition 2, unlisted values mutually incomparable); everything else
must agree with it exactly, as an id *set*.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms import ALGORITHMS, SFSDirect
from repro.algorithms.bruteforce import bruteforce_skyline
from repro.core.dataset import Dataset
from repro.core.dominance import RankTable
from repro.datagen import SyntheticConfig, generate
from repro.datagen.queries import generate_preference
from repro.engine import get_backend, numpy_available
from repro.exceptions import EngineError

#: Backends under audit; unavailable ones are skipped per-environment
#: (the CI matrix runs the suite both with and without NumPy).
#: ``bitset-python`` is the bit-packed backend with its python-int
#: tier forced, so the fallback stays under the oracle even on
#: NumPy-equipped hosts.
BACKENDS = ("python", "numpy", "parallel", "bitset", "bitset-python")

#: Algorithm names under audit (ALGORITHMS plus the SFS-D wrapper).
ALGORITHM_NAMES = tuple(sorted(ALGORITHMS)) + ("sfs_d",)

#: ~50 seeded cases: (dataset seed, preference seed, shape knobs).
CASES = [
    pytest.param(
        {
            "data_seed": data_seed,
            "pref_seed": 1000 * data_seed + variant,
            "num_points": 40 + 17 * (data_seed % 5),
            "num_numeric": 1 + (data_seed % 2),
            "num_nominal": 1 + (variant % 2) + (data_seed % 2),
            "cardinality": 3 + (data_seed % 4),
            "order": variant % 4,
            "distribution": ("anticorrelated", "independent", "correlated")[
                data_seed % 3
            ],
        },
        id=f"case{data_seed:02d}-{variant}",
    )
    for data_seed in range(10)
    for variant in range(5)
]


def _build_case(params):
    """Dataset + preference + reference answer for one seeded case."""
    data = generate(
        SyntheticConfig(
            num_points=params["num_points"],
            num_numeric=params["num_numeric"],
            num_nominal=params["num_nominal"],
            cardinality=params["cardinality"],
            distribution=params["distribution"],
            seed=params["data_seed"],
        )
    )
    rng = random.Random(params["pref_seed"])
    if params["order"] == 0:
        preference = None  # the empty partial order is a case too
    else:
        preference = generate_preference(
            data,
            params["order"],
            rng=rng,
            weighting="uniform" if params["pref_seed"] % 2 else "frequency",
        )
    table = RankTable.compile(data.schema, preference)
    reference = frozenset(
        bruteforce_skyline(
            data.canonical_rows,
            data.ids,
            table,
            backend=get_backend("python"),
        )
    )
    return data, preference, table, reference


def _make_backend(backend_name):
    """Instantiate one audited backend (may raise EngineError)."""
    if backend_name == "bitset-python":
        from repro.engine import make_bitset_backend

        return make_bitset_backend(packed="python")
    return get_backend(backend_name)


def _resolve(backend_name):
    """The backend instance, or a skip when its dependency is absent."""
    if backend_name in ("numpy",) and not numpy_available():
        pytest.skip("NumPy not installed")
    try:
        return _make_backend(backend_name)
    except EngineError as exc:  # pragma: no cover - environment dependent
        pytest.skip(str(exc))


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("params", CASES)
def test_every_algorithm_matches_bruteforce(params, backend_name):
    """All algorithms on this backend agree with the reference answer."""
    backend = _resolve(backend_name)
    data, preference, table, reference = _build_case(params)
    store = data.columns if backend.vectorized else None
    for name in sorted(ALGORITHMS):
        got = frozenset(
            ALGORITHMS[name](
                data.canonical_rows,
                data.ids,
                table,
                backend=backend,
                store=store,
            )
        )
        assert got == reference, (
            f"{name} on backend {backend_name!r} diverged from brute "
            f"force: extra={sorted(got - reference)}, "
            f"missing={sorted(reference - got)}"
        )
    sfs_d = frozenset(SFSDirect(data, backend=backend).query(preference))
    assert sfs_d == reference, (
        f"sfs_d on backend {backend_name!r} diverged from brute force: "
        f"extra={sorted(sfs_d - reference)}, "
        f"missing={sorted(reference - sfs_d)}"
    )


@pytest.mark.parametrize("params", CASES)
def test_bbs_matches_bruteforce(params):
    """BBS, pinned by name, agrees with the reference on every case.

    The matrix above already exercises ``bbs`` through the ALGORITHMS
    registry; this direct test keeps the spatial family (the R-tree +
    branch-and-bound pair) under the oracle even if the registry entry
    is ever reshuffled, and it is where the partial-order adaptation
    (rank ties never prune) earns its keep - the seeded cases include
    multi-nominal datasets full of incomparable unlisted values.
    """
    from repro.algorithms.bbs import bbs_skyline

    data, _preference, table, reference = _build_case(params)
    got = frozenset(
        bbs_skyline(data.canonical_rows, data.ids, table)
    )
    assert got == reference, (
        f"bbs diverged from brute force: "
        f"extra={sorted(got - reference)}, "
        f"missing={sorted(reference - got)}"
    )


@pytest.mark.parametrize("params", CASES[::5])
def test_rtree_invariants_on_oracle_rank_vectors(params):
    """The R-tree BBS searches is structurally sound on real rank data.

    Checked per seeded case, over the exact rank vectors BBS indexes:
    every payload appears exactly once, every point lies inside its
    leaf's MBR, every child MBR nests inside its parent's, and
    ``min_score`` (the heap key) is monotone - a child can never score
    below its parent, which is what makes the best-first pop order of
    the branch-and-bound sound.
    """
    from repro.spatial.rtree import bulk_load

    data, _preference, table, _reference = _build_case(params)
    items = [(table.rank_vector(data.canonical(i)), i) for i in data.ids]
    tree = bulk_load(items, capacity=4)
    assert tree.size == len(items)
    assert sorted(tree.all_payloads()) == sorted(i for _point, i in items)

    def check(node):
        assert node.min_score() == sum(node.mbr_min)
        if node.is_leaf:
            assert node.entries
            for point, _payload in node.entries:
                assert all(
                    lo <= x <= hi
                    for lo, x, hi in zip(node.mbr_min, point, node.mbr_max)
                )
        else:
            assert node.children
            for child in node.children:
                assert all(
                    plo <= clo and chi <= phi
                    for plo, clo, chi, phi in zip(
                        node.mbr_min, child.mbr_min,
                        child.mbr_max, node.mbr_max,
                    )
                )
                assert child.min_score() >= node.min_score()
                check(child)

    check(tree.root)


@pytest.mark.parametrize("params", CASES[::7])
def test_reference_is_backend_independent(params):
    """Brute force itself agrees across backends (anchors the oracle)."""
    data, _preference, table, reference = _build_case(params)
    for backend_name in BACKENDS:
        if backend_name == "numpy" and not numpy_available():
            continue
        backend = _make_backend(backend_name)
        store = data.columns if backend.vectorized else None
        got = frozenset(
            bruteforce_skyline(
                data.canonical_rows,
                data.ids,
                table,
                backend=backend,
                store=store,
            )
        )
        assert got == reference
