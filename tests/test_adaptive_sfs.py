"""Unit tests for the Adaptive SFS index (queries)."""

import pytest

from repro.adaptive.adaptive_sfs import AdaptiveSFS
from repro.core.preferences import Preference
from repro.core.skyline import skyline
from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
)
from repro.datagen.queries import generate_preferences
from repro.exceptions import DatasetError, RefinementError


@pytest.fixture(scope="module")
def workload():
    return generate(
        SyntheticConfig(
            num_points=200, num_numeric=2, num_nominal=2, cardinality=5,
            seed=77,
        )
    )


class TestPreprocessing:
    def test_skyline_matches_reference(self, workload):
        index = AdaptiveSFS(workload)
        assert index.skyline_ids == sorted(skyline(workload).ids)

    def test_template_skyline(self, workload):
        template = frequent_value_template(workload)
        index = AdaptiveSFS(workload, template)
        assert index.skyline_ids == sorted(
            skyline(workload, template=template).ids
        )

    def test_preprocessing_time_recorded(self, workload):
        index = AdaptiveSFS(workload)
        assert index.preprocessing_seconds > 0

    def test_storage_accounts_members(self, workload):
        index = AdaptiveSFS(workload)
        n = len(index.skyline_ids)
        # 12 bytes per member + 4 per inverted entry (2 nominal dims).
        assert index.storage_bytes() == 12 * n + 4 * (2 * n)


class TestQueries:
    @pytest.mark.parametrize("order", [0, 1, 2, 3, 5])
    def test_matches_bruteforce(self, workload, order):
        index = AdaptiveSFS(workload)
        for pref in generate_preferences(workload, order, 6, seed=order):
            expected = sorted(
                skyline(workload, pref, algorithm="bruteforce").ids
            )
            assert index.query(pref) == expected

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_matches_bruteforce_with_template(self, workload, order):
        template = frequent_value_template(workload)
        index = AdaptiveSFS(workload, template)
        for pref in generate_preferences(
            workload, order, 6, template=template, seed=order + 10
        ):
            expected = sorted(
                skyline(
                    workload, pref, template=template, algorithm="bruteforce"
                ).ids
            )
            assert index.query(pref) == expected

    def test_query_scan_agrees_with_optimised_path(self, workload):
        index = AdaptiveSFS(workload)
        for pref in generate_preferences(workload, 3, 10, seed=4):
            assert index.query(pref) == index.query_scan(pref)

    def test_empty_query_returns_template_skyline(self, workload):
        index = AdaptiveSFS(workload)
        assert index.query() == index.skyline_ids

    def test_non_refining_query_rejected(self, workload):
        template = frequent_value_template(workload)
        index = AdaptiveSFS(workload, template)
        top = workload.most_frequent("nom0", 2)
        hostile = Preference({"nom0": [top[1]]})  # wrong first value
        with pytest.raises(RefinementError):
            index.query(hostile)


class TestProgressiveness:
    def test_yielded_ids_are_final(self, workload):
        """Every prefix of iter_query is a subset of the true skyline."""
        index = AdaptiveSFS(workload)
        pref = generate_preferences(workload, 3, 1, seed=12)[0]
        truth = set(skyline(workload, pref, algorithm="bruteforce").ids)
        emitted = []
        for point_id in index.iter_query(pref):
            assert point_id in truth
            emitted.append(point_id)
        assert set(emitted) == truth

    def test_emission_in_score_order(self, workload):
        from repro.core.dominance import RankTable

        index = AdaptiveSFS(workload)
        pref = generate_preferences(workload, 2, 1, seed=13)[0]
        table = RankTable.compile(workload.schema, pref)
        scores = [
            table.score(workload.canonical(i))
            for i in index.iter_query(pref)
        ]
        assert scores == sorted(scores)


class TestAffectCount:
    def test_affect_counts_listed_values(self, workload):
        index = AdaptiveSFS(workload)
        pref = Preference({"nom0": ["d0_v0", "d0_v1"]})
        listed_ids = {
            workload.value_id("nom0", "d0_v0"),
            workload.value_id("nom0", "d0_v1"),
        }
        dim = workload.schema.index_of("nom0")
        expected = sum(
            1
            for i in index.skyline_ids
            if workload.canonical(i)[dim] in listed_ids
        )
        assert index.affect_count(pref) == expected

    def test_affect_zero_for_empty_query(self, workload):
        index = AdaptiveSFS(workload)
        assert index.affect_count() == 0

    def test_affect_includes_template_prefix(self, workload):
        """AFFECT counts values listed by the merged preference R~'."""
        template = frequent_value_template(workload)
        index = AdaptiveSFS(workload, template)
        assert index.affect_count() == index.affect_count(template)
        assert index.affect_count() > 0


class TestRowAccess:
    def test_row_roundtrip(self, workload):
        index = AdaptiveSFS(workload)
        assert index.row(3) == workload.row(3)
        assert index.num_points == len(workload)

    def test_dead_row_raises(self, workload):
        index = AdaptiveSFS(workload)
        index.delete(3)
        with pytest.raises(DatasetError):
            index.row(3)
