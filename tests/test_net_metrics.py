"""Metrics correctness: exact reconciliation + exposition conformance.

The contract under test: the numbers on ``/metrics`` are *bookkeeping*,
not estimates - N queries produce exactly N histogram observations and
exactly N route-counter increments, cache outcomes partition the served
results, and the rendered text parses under a minimal (but strict)
Prometheus text-format checker with cumulative, conserved histograms.
"""

from __future__ import annotations

import math
import re

import pytest

from repro.datagen.generator import (
    SyntheticConfig,
    frequent_value_template,
    generate,
)
from repro.datagen.queries import generate_preferences
from repro.net import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NetClient,
    ServerConfig,
    ServerThread,
)
from repro.serve.service import SkylineService

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def parse_prometheus(text: str):
    """A strict minimal parser for the Prometheus text format.

    Returns ``{family: {"help": str, "type": str, "samples":
    {(name, labels-tuple): float}}}`` and raises AssertionError on any
    line that does not conform - unknown sample prefixes, samples
    before their headers, malformed label pairs, unparseable values.
    """
    families = {}
    current = None
    for line in text.strip("\n").split("\n"):
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert name not in families, f"duplicate HELP for {name}"
            families[name] = {"help": help_text, "type": None, "samples": {}}
            current = name
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name == current, f"TYPE without preceding HELP: {line!r}"
            assert kind in ("counter", "gauge", "histogram"), line
            families[name]["type"] = kind
            continue
        assert not line.startswith("#"), f"unknown comment line {line!r}"
        match = _SAMPLE_LINE.match(line)
        assert match, f"malformed sample line {line!r}"
        name = match.group("name")
        assert current is not None, f"sample before any header: {line!r}"
        kind = families[current]["type"]
        allowed = (
            {current + "_bucket", current + "_sum", current + "_count"}
            if kind == "histogram"
            else {current}
        )
        assert name in allowed, (
            f"sample {name!r} does not belong to family {current!r}"
        )
        labels = ()
        if match.group("labels"):
            parts = match.group("labels").split(",")
            for part in parts:
                assert _LABEL_PAIR.match(part), f"bad label pair {part!r}"
            labels = tuple(sorted(parts))
        raw = match.group("value")
        value = math.inf if raw == "+Inf" else float(raw)
        key = (name, labels)
        assert key not in families[current]["samples"], f"duplicate {key}"
        families[current]["samples"][key] = value
    for name, family in families.items():
        assert family["type"] is not None, f"{name} has HELP but no TYPE"
    return families


def histogram_series(family, label_filter: str):
    """(le -> cumulative), sum, count of one labelled histogram series."""
    buckets, total, count = {}, None, None
    for (name, labels), value in family["samples"].items():
        if not any(label_filter in lab for lab in labels):
            continue
        if name.endswith("_bucket"):
            le = next(
                lab.split("=", 1)[1].strip('"')
                for lab in labels if lab.startswith("le=")
            )
            buckets[le] = value
        elif name.endswith("_sum"):
            total = value
        elif name.endswith("_count"):
            count = value
    return buckets, total, count


# ---------------------------------------------------------------------------
# live-server reconciliation
# ---------------------------------------------------------------------------
@pytest.fixture()
def stack():
    """A fresh service + server + registry (counters must start at 0)."""
    dataset = generate(
        SyntheticConfig(
            num_points=150, num_numeric=2, num_nominal=2,
            cardinality=4, seed=3,
        )
    )
    service = SkylineService(
        dataset, frequent_value_template(dataset, 1), cache_capacity=32
    )
    registry = MetricsRegistry()
    config = ServerConfig(port=0, access_log=False)
    with ServerThread(service, config, registry=registry) as thread:
        yield service, registry, thread


def test_query_counters_reconcile_exactly(stack):
    service, registry, thread = stack
    pref_a, pref_b = generate_preferences(
        service.dataset, 2, 2, template=service.template, seed=1
    )
    with NetClient(thread.host, thread.port) as client:
        # Scripted outcomes: miss, hit, miss, hit, hit.
        for pref in (pref_a, pref_a, pref_b, pref_b, pref_a):
            assert client.query(pref).status == 200
        text = client.metrics().text

    requests = registry.get("repro_http_requests_total")
    assert requests.value("query", "POST", "200") == 5
    histogram = registry.get("repro_http_request_seconds")
    assert histogram.count("query") == 5

    outcomes = registry.get("repro_net_cache_outcomes_total")
    assert outcomes.value("hit") == 3
    assert outcomes.value("miss") == 2
    # hits + misses == served query results, exactly.
    assert outcomes.value("hit") + outcomes.value("miss") == 5

    routes = registry.get("repro_net_query_routes_total")
    route_total = sum(value for _, value in routes.samples())
    assert route_total == 5
    assert routes.value("cache") == 3  # the three hits

    # The service's own view agrees with the wire-layer counters.
    stats = service.stats()
    assert stats.queries == 5
    assert stats.cache.hits == 3
    assert stats.cache.misses == 2

    # And the rendered exposition carries the same numbers.
    families = parse_prometheus(text)
    samples = families["repro_http_requests_total"]["samples"]
    key = (
        "repro_http_requests_total",
        tuple(sorted(['route="query"', 'method="POST"', 'status="200"'])),
    )
    assert samples[key] == 5.0
    gauge_samples = families["repro_service_queries_total"]["samples"]
    assert gauge_samples[("repro_service_queries_total", ())] == 5.0


def test_batch_results_observe_into_counters(stack):
    service, registry, thread = stack
    prefs = generate_preferences(
        service.dataset, 2, 6, template=service.template, seed=2
    )
    with NetClient(thread.host, thread.port) as client:
        response = client.batch(prefs + prefs[:2])  # 2 guaranteed dups
        assert response.status == 200
        assert len(response.json["results"]) == 8

    requests = registry.get("repro_http_requests_total")
    assert requests.value("batch", "POST", "200") == 1
    assert registry.get("repro_http_request_seconds").count("batch") == 1
    # Every per-query result lands in exactly one cache-outcome bucket.
    outcomes = registry.get("repro_net_cache_outcomes_total")
    total_outcomes = sum(value for _, value in outcomes.samples())
    assert total_outcomes == 8
    routes = registry.get("repro_net_query_routes_total")
    assert sum(value for _, value in routes.samples()) == 8


def test_histogram_buckets_are_cumulative_and_conserved(stack):
    service, registry, thread = stack
    with NetClient(thread.host, thread.port) as client:
        for _ in range(4):
            assert client.healthz().status == 200
        text = client.metrics().text
    families = parse_prometheus(text)
    family = families["repro_http_request_seconds"]
    buckets, total, count = histogram_series(family, 'route="healthz"')
    assert count == 4.0
    assert total is not None and total >= 0.0
    # Cumulative: non-decreasing in le order, +Inf equals _count.
    ordered = sorted(
        buckets.items(),
        key=lambda kv: math.inf if kv[0] == "+Inf" else float(kv[0]),
    )
    values = [value for _, value in ordered]
    assert values == sorted(values)
    assert ordered[-1][0] == "+Inf"
    assert ordered[-1][1] == count


def test_metrics_endpoint_parses_and_covers_the_catalog(stack):
    service, registry, thread = stack
    with NetClient(thread.host, thread.port) as client:
        assert client.query(None).status == 200
        response = client.metrics()
    assert response.status == 200
    assert response.headers.get("Content-Type", "").startswith("text/plain")
    families = parse_prometheus(response.text)
    for name in (
        "repro_http_requests_total",
        "repro_http_request_seconds",
        "repro_http_rejected_total",
        "repro_net_protocol_errors_total",
        "repro_net_cache_outcomes_total",
        "repro_net_query_routes_total",
        "repro_net_config_reloads_total",
        "repro_net_client_aborts_total",
        "repro_net_connections_total",
        "repro_net_open_connections",
        "repro_net_inflight_requests",
        "repro_net_queue_depth",
        "repro_net_draining",
        "repro_net_config_generation",
        "repro_service_data_version",
        "repro_service_queries_total",
        "repro_service_cache_hits_total",
        "repro_service_cache_misses_total",
        "repro_net_idempotency_total",
        "repro_net_faults_injected_total",
        "repro_service_health_degraded",
        "repro_service_degraded_transitions_total",
        "repro_service_recoveries_total",
        "repro_service_checkpoint_failures_total",
    ):
        assert name in families, f"{name} missing from /metrics"
        assert families[name]["help"], f"{name} has empty HELP"


def test_protocol_errors_are_counted_by_kind(stack):
    import socket

    service, registry, thread = stack
    with socket.create_connection((thread.host, thread.port), 5) as sock:
        sock.sendall(b"BREW /x HTTP/1.1\r\n\r\n")
        sock.shutdown(socket.SHUT_WR)
        while sock.recv(65536):
            pass
    errors = registry.get("repro_net_protocol_errors_total")
    assert errors.value("bad-method") == 1


# ---------------------------------------------------------------------------
# instrument unit behavior
# ---------------------------------------------------------------------------
def test_counter_rejects_label_mismatch_and_negative_amounts():
    counter = Counter("c_total", "help", ("a",))
    counter.inc("x")
    with pytest.raises(ValueError):
        counter.inc()
    with pytest.raises(ValueError):
        counter.inc("x", amount=-1)
    assert counter.value("x") == 1.0
    assert counter.value("never") == 0.0


def test_gauge_callback_vs_set():
    box = {"v": 3.0}
    sampled = Gauge("g", "help", lambda: box["v"])
    assert sampled.value() == 3.0
    box["v"] = 7.0
    assert sampled.value() == 7.0
    with pytest.raises(ValueError):
        sampled.set(1.0)
    plain = Gauge("g2", "help")
    plain.set(2.5)
    assert plain.value() == 2.5


def test_histogram_bucket_validation_and_assignment():
    with pytest.raises(ValueError):
        Histogram("h", "help", buckets=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", "help", buckets=())
    hist = Histogram("h_seconds", "help", buckets=(0.1, 1.0))
    for value in (0.05, 0.1, 0.5, 2.0):
        hist.observe(value)
    samples = dict(hist.samples())
    assert samples['h_seconds_bucket{le="0.1"}'] == 2.0   # 0.05, 0.1
    assert samples['h_seconds_bucket{le="1"}'] == 3.0     # + 0.5
    assert samples['h_seconds_bucket{le="+Inf"}'] == 4.0  # + 2.0
    assert samples["h_seconds_count"] == 4.0
    assert samples["h_seconds_sum"] == pytest.approx(2.65)


def test_histogram_folds_explicit_inf_edge_into_the_implicit_one():
    """Regression: a trailing ``+Inf`` edge must not double-emit.

    ``samples()`` always appends the implicit ``+Inf`` bucket; a caller
    passing an explicit ``math.inf`` final edge used to produce two
    ``le="+Inf"`` lines, which strict parsers reject as a duplicate
    series.  The explicit edge is folded into the implicit one.
    """
    hist = Histogram("inf_seconds", "help", buckets=(0.1, 1.0, math.inf))
    assert hist.buckets == (0.1, 1.0)
    for value in (0.05, 5.0):
        hist.observe(value)
    samples = hist.samples()
    inf_lines = [s for s, _ in samples if 'le="+Inf"' in s]
    assert inf_lines == ['inf_seconds_bucket{le="+Inf"}']
    assert dict(samples)['inf_seconds_bucket{le="+Inf"}'] == 2.0
    # And the strict parser accepts a registry rendering it.
    registry = MetricsRegistry()
    registry.histogram(
        "folded_seconds", "help", buckets=(0.5, math.inf)
    ).observe(0.2)
    parse_prometheus(registry.render())
    with pytest.raises(ValueError):
        Histogram("h", "help", buckets=(math.inf,))  # no finite edge
    with pytest.raises(ValueError):
        Histogram("h", "help", buckets=(0.1, math.inf, 1.0))  # not sorted


def test_registry_reuses_and_type_checks_instruments():
    registry = MetricsRegistry()
    first = registry.counter("x_total", "help")
    assert registry.counter("x_total", "other") is first
    with pytest.raises(ValueError):
        registry.gauge("x_total", "conflicting kind")
    assert registry.get("x_total") is first
    assert registry.get("absent") is None


def test_render_escapes_label_values():
    registry = MetricsRegistry()
    counter = registry.counter("esc_total", "help", ("detail",))
    counter.inc('quo"te\nnewline')
    rendered = registry.render()
    assert '\\"' in rendered and "\\n" in rendered
    parse_prometheus(rendered)  # and the checker still accepts it
