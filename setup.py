"""Packaging for the ``repro`` reproduction.

The container this reproduction targets has no network and no ``wheel``
package, so PEP 660 editable installs (``pip install -e .``) cannot
build their editable wheel.  ``python setup.py develop`` provides the
equivalent editable install using only setuptools.

The package has **zero required dependencies**: the pure-Python
execution backend is always available.  NumPy is an optional extra
(``pip install repro[fast]``) enabling the vectorized columnar backend
and the ``uint64``-lane tier of the bit-parallel ``bitset`` backend
(see ``src/repro/engine/README.md``); the import machinery degrades
gracefully when it is absent.  The ``bitset`` backend's compiled C
sweep needs no extra at all — it is built on demand with the system C
compiler when one exists (gate with ``REPRO_BITSET_KERNEL``), and the
backend falls back to NumPy lanes, then to arbitrary-width Python
ints, without changing any answer.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Wong et al., 'Efficient Skyline Querying with "
        "Variable User Preferences on Nominal Attributes' (PVLDB'08)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    install_requires=[],
    extras_require={
        "fast": ["numpy>=1.22"],
        "test": ["pytest", "hypothesis"],
    },
)
