"""Legacy setup shim.

The container this reproduction targets has no network and no ``wheel``
package, so PEP 660 editable installs (``pip install -e .``) cannot
build their editable wheel.  ``python setup.py develop`` provides the
equivalent editable install using only setuptools; all metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
